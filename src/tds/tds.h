// TrustedDataServer (TDS): the paper's unit of trust — a personal data
// server running inside a secure device. It hosts a local database behind an
// access-control policy and participates in the three protocol phases:
//
//  * collection  — decrypt the query, authenticate the querier, evaluate the
//                  WHERE clause (plus local internal joins) on local data and
//                  emit encrypted tuples (or a dummy);
//  * aggregation — decrypt a partition, drop dummy/fake items, fold tuples
//                  and partial aggregations into a GroupedAggregation, emit
//                  it re-encrypted;
//  * filtering   — decrypt the covering result, finalize groups / drop
//                  dummies, apply HAVING, emit result rows under k1.
//
// Everything that crosses the TDS boundary is ciphertext; the only cleartext
// channel is the routing tag a protocol deliberately exposes.
#ifndef TCELLS_TDS_TDS_H_
#define TCELLS_TDS_TDS_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "common/result.h"
#include "common/rng.h"
#include "crypto/keystore.h"
#include "keys/tds_keys.h"
#include "sql/analyzer.h"
#include "sql/executor.h"
#include "ssi/messages.h"
#include "storage/secure_store.h"
#include "storage/table.h"
#include "tds/access_control.h"
#include "tds/config.h"
#include "tds/leak_log.h"

namespace tcells::tds {

/// Construction parameters shared by a fleet.
struct TdsOptions {
  /// RAM budget for the partial aggregate structure; 0 = unlimited. The
  /// paper's board has 64 KB (§6.2); S_Agg's feasibility depends on it.
  size_t ram_budget_bytes = 0;
  /// Max distinct query_ids whose analyzed form is cached; least-recently
  /// used entries are evicted beyond this, so a long-lived TDS serving an
  /// unbounded stream of queries holds bounded memory. 0 = unlimited.
  size_t query_cache_capacity = 64;
  /// Non-null marks the TDS as COMPROMISED (threat-model extension): it
  /// follows the protocol but records every plaintext it decrypts into the
  /// log, modeling an attacker who extracted k2 from the device.
  std::shared_ptr<LeakLog> leak_log;
};

class TrustedDataServer {
 public:
  TrustedDataServer(uint64_t id,
                    std::shared_ptr<const crypto::KeyStore> keys,
                    std::shared_ptr<const Authority> authority,
                    AccessPolicy policy,
                    TdsOptions options = {});

  uint64_t id() const { return id_; }
  storage::Database& db() { return db_; }
  const storage::Database& db() const { return db_; }

  /// Marks this TDS compromised post-construction (threat extension): every
  /// plaintext it subsequently decrypts is recorded into `log`.
  void set_leak_log(std::shared_ptr<LeakLog> log) {
    options_.leak_log = std::move(log);
  }

  /// Dynamic key mode: attaches this TDS's key state (borrowed; must outlive
  /// the TDS). Once installed, queries carrying a key posting are served
  /// under per-query session keys derived through it; postings on a TDS
  /// without key state fail with FailedPrecondition.
  void InstallKeyState(keys::TdsKeyState* state) { key_state_ = state; }
  keys::TdsKeyState* key_state() const { return key_state_; }

  /// Dynamic key mode: authenticates one collection upload (epoch-stamped
  /// HMAC over query_id + the items' digest). FailedPrecondition without an
  /// installed key state.
  Result<keys::ContributionTag> TagContribution(
      uint64_t query_id, const std::vector<ssi::EncryptedItem>& items);

  /// Power-down: seals the local database into an encrypted flash image
  /// (Fig 1's untrusted mass storage) under the device storage key.
  Result<storage::SecureDatabase::Image> SealDatabase(
      const Bytes& storage_key, Rng* rng) const {
    return storage::SecureDatabase::Seal(db_, storage_key, rng);
  }

  /// Power-up: verifies and restores the database from a flash image,
  /// replacing the in-memory state. Cached query analyses are dropped (the
  /// catalog is rebuilt).
  Status RestoreDatabase(const storage::SecureDatabase::Image& image,
                         const Bytes& storage_key) {
    TCELLS_ASSIGN_OR_RETURN(storage::Database db,
                            storage::SecureDatabase::Open(image, storage_key));
    db_ = std::move(db);
    std::lock_guard<std::mutex> lock(cache_mu_);
    query_cache_.clear();
    lru_order_.clear();
    return Status::OK();
  }

  /// Decrypts + parses + analyzes the posted query against the local catalog,
  /// verifies the credential, and checks the access policy. Cached per
  /// query_id in a small LRU (TdsOptions::query_cache_capacity); the
  /// returned pointer stays valid until this query_id is evicted, i.e. at
  /// least until `capacity` other queries have been opened since.
  /// PermissionDenied comes back as a status; ProcessCollection turns it
  /// into a dummy answer instead of an error (the SSI must not learn who
  /// denied).
  ///
  /// Thread-safety: the cache itself is mutex-guarded, so concurrent queries
  /// (the engine scheduler runs several sessions against one fleet) can open
  /// different query_ids on the same TDS simultaneously. The raw pointer
  /// form is for single-query callers; under cross-query concurrency use
  /// the phases (ProcessCollection pins the entry it uses).
  Result<const sql::AnalyzedQuery*> OpenQuery(const ssi::QueryPost& post);

  /// Number of cached analyzed queries (bounded by query_cache_capacity).
  size_t query_cache_size() const {
    std::lock_guard<std::mutex> lock(cache_mu_);
    return query_cache_.size();
  }

  /// Collection phase (§3.2 steps 2-4 / §4 collection). Returns the items to
  /// upload: true tuples (plus noise under kDetTag) or a single dummy when
  /// the local result is empty or access was denied.
  Result<std::vector<ssi::EncryptedItem>> ProcessCollection(
      const ssi::QueryPost& post, const CollectionConfig& config, Rng* rng);

  /// Aggregation phase (steps 6-8): folds one partition into partial
  /// aggregations. Tag policy selects the output shape (see config.h).
  /// ResourceExhausted if the partial aggregate exceeds the RAM budget.
  Result<std::vector<ssi::EncryptedItem>> ProcessAggregationPartition(
      const sql::AnalyzedQuery& query, const ssi::Partition& partition,
      OutputTagPolicy tag_policy, const CollectionConfig& config, Rng* rng);

  /// Filtering phase (steps 9-12): turns the covering result into final
  /// result rows encrypted under k1. For aggregation queries the partition
  /// items are finished per-group aggregations; for plain SFW queries they
  /// are collection tuples whose dummies must be dropped.
  Result<std::vector<ssi::EncryptedItem>> ProcessFiltering(
      const sql::AnalyzedQuery& query, const ssi::Partition& partition,
      Rng* rng, const CollectionConfig& config = {});

  /// Encodes the canonical group-key bytes used for Det tags.
  Bytes GroupKeyTagBytes(const crypto::KeyStore& keys,
                         const storage::Tuple& collection_tuple,
                         size_t key_arity) const;

 private:
  /// The KeyStore a query runs under: the static provisioned store when
  /// `posting` is absent, the per-query session store derived through the
  /// installed key state when present. NotFound when a revoked/stale TDS
  /// cannot reach the posting's epoch.
  Result<std::shared_ptr<const crypto::KeyStore>> KeysForQuery(
      const std::optional<ssi::QueryKeyPosting>& posting) const;
  /// One dummy item shaped/tagged per the collection mode.
  Result<ssi::EncryptedItem> MakeDummy(const crypto::KeyStore& keys,
                                       const sql::AnalyzedQuery& query,
                                       const CollectionConfig& config,
                                       Rng* rng) const;
  /// Encrypt payload under k2 (nDet).
  ssi::EncryptedItem SealK2(const crypto::KeyStore& keys, const Bytes& payload,
                            std::optional<Bytes> tag, Rng* rng) const;
  /// Span form for sealing straight out of a scratch buffer.
  ssi::EncryptedItem SealK2(const crypto::KeyStore& keys,
                            const uint8_t* payload, size_t payload_size,
                            std::optional<Bytes> tag, Rng* rng) const;

  uint64_t id_;
  std::shared_ptr<const crypto::KeyStore> keys_;
  keys::TdsKeyState* key_state_ = nullptr;
  std::shared_ptr<const Authority> authority_;
  AccessPolicy policy_;
  TdsOptions options_;
  storage::Database db_;

  struct CachedQuery {
    /// The analysis itself is shared fleet-wide (sql::AnalyzeSqlShared):
    /// every TDS with the same catalog shape holds the same immutable
    /// object, so a 1000-TDS fleet parses each query text once. The
    /// credential/policy outcome below stays per-TDS.
    std::shared_ptr<const sql::AnalyzedQuery> query;
    Status access;  // OK or PermissionDenied
    /// Position in lru_order_ (for O(1) touch on cache hits).
    std::list<uint64_t>::iterator lru_pos;
  };
  /// Cache lookup-or-fill under cache_mu_. The returned entry is pinned by
  /// the shared_ptr: a concurrent eviction (another query's fill) frees the
  /// map slot but not the analysis the caller is still reading.
  Result<std::shared_ptr<const CachedQuery>> OpenQueryEntry(
      const ssi::QueryPost& post);

  /// Entries are shared_ptr so an in-use analysis survives LRU eviction by a
  /// concurrent query. Guarded by cache_mu_ together with lru_order_.
  std::map<uint64_t, std::shared_ptr<CachedQuery>> query_cache_;
  /// query_ids, most-recently-used first.
  std::list<uint64_t> lru_order_;
  mutable std::mutex cache_mu_;
};

}  // namespace tcells::tds

#endif  // TCELLS_TDS_TDS_H_
