// Nearly equi-depth histogram over the grouping-attribute domain (§4.4).
//
// Built from the (approximate) distribution of A_G values — itself obtained
// by the distribution-discovery protocol — the histogram decomposes the
// domain into buckets holding nearly the same number of true tuples. Each
// TDS maps its tuple's group key to a bucket and exposes only the keyed hash
// h(bucketId) to the SSI.
#ifndef TCELLS_TDS_HISTOGRAM_H_
#define TCELLS_TDS_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "storage/tuple.h"

namespace tcells::tds {

/// Immutable bucket decomposition of an ordered key domain.
class EquiDepthHistogram {
 public:
  /// Builds buckets of near-equal total frequency from `freq` (group key ->
  /// occurrence count). `num_buckets` is clamped to [1, #distinct keys].
  static EquiDepthHistogram Build(
      const std::map<storage::Tuple, uint64_t>& freq, size_t num_buckets);

  /// Bucket of `key`. Keys outside the observed domain fall into the nearest
  /// bucket by order, so stale distributions still yield a valid mapping.
  uint32_t BucketOf(const storage::Tuple& key) const;

  size_t num_buckets() const { return upper_bounds_.size(); }

  /// Average number of distinct observed keys per bucket — the collision
  /// factor h of the exposure analysis (§5).
  double CollisionFactor() const;

  /// Canonical bytes of a bucket id (input to the keyed hash).
  static Bytes BucketIdBytes(uint32_t bucket);

  /// Wire encoding, so the discovery result can be distributed to the fleet
  /// (inside an encrypted envelope — bucket bounds reveal the distribution).
  void EncodeTo(Bytes* out) const;
  static Result<EquiDepthHistogram> Decode(const Bytes& data);

  bool Equals(const EquiDepthHistogram& other) const {
    return upper_bounds_ == other.upper_bounds_ && num_keys_ == other.num_keys_;
  }

 private:
  // upper_bounds_[i] is the largest key assigned to bucket i; buckets are
  // contiguous ranges in key order.
  std::vector<storage::Tuple> upper_bounds_;
  size_t num_keys_ = 0;
};

}  // namespace tcells::tds

#endif  // TCELLS_TDS_HISTOGRAM_H_
