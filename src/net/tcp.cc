#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "net/frame.h"

namespace tcells::net {

namespace {

Status Errno(const char* what) {
  return Status::Unavailable(std::string(what) + ": " +
                             std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl");
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Milliseconds until `deadline`, clamped to >= 0.
int RemainingMillis(std::chrono::steady_clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/// Per-connection server state: bytes received but not yet framed, response
/// bytes accepted but not yet written to the socket, and the epoll interest
/// mask currently registered for the fd (so the loop only issues
/// EPOLL_CTL_MOD when the desired mask actually changes).
struct Conn {
  Bytes in;
  Bytes out;
  size_t out_pos = 0;
  uint32_t interest = 0;
};

class TcpChannel : public Channel {
 public:
  explicit TcpChannel(int fd) : fd_(fd) {}
  ~TcpChannel() override {
    if (fd_ >= 0) ::close(fd_);
  }

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  Result<Bytes> Call(const Bytes& request, const CallOptions& opts) override {
    if (fd_ < 0) return Status::Unavailable("channel is closed");
    auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(
            static_cast<int64_t>(opts.deadline_seconds * 1e6));

    Bytes wire;
    AppendFrame(&wire, request);
    Status sent = SendAll(wire, deadline);
    if (!sent.ok()) {
      Close();
      return sent;
    }
    // Frames are strictly request/reply per channel, so everything that
    // arrives now belongs to this call's response.
    Status error;
    Bytes frame;
    while (!TryExtractFrame(&recv_buf_, &frame, &error)) {
      if (!error.ok()) {
        Close();
        return error;  // Hostile length prefix: fatal, not retryable.
      }
      Status received = RecvSome(deadline);
      if (!received.ok()) {
        // Abandoning a call mid-receive (deadline expiry included) leaves
        // its reply in flight; the stream can never again be paired with a
        // later call, so the channel closes rather than serve stale bytes.
        Close();
        return received;
      }
    }
    return frame;
  }

 private:
  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  Status SendAll(const Bytes& data, std::chrono::steady_clock::time_point deadline) {
    size_t off = 0;
    while (off < data.size()) {
      struct pollfd pfd = {fd_, POLLOUT, 0};
      int ms = RemainingMillis(deadline);
      if (ms == 0) return Status::DeadlineExceeded("send deadline expired");
      int rc = ::poll(&pfd, 1, ms);
      if (rc == 0) return Status::DeadlineExceeded("send deadline expired");
      if (rc < 0) {
        if (errno == EINTR) continue;
        return Errno("poll");
      }
      ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
        return Errno("send");
      }
      off += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status RecvSome(std::chrono::steady_clock::time_point deadline) {
    struct pollfd pfd = {fd_, POLLIN, 0};
    int ms = RemainingMillis(deadline);
    if (ms == 0) return Status::DeadlineExceeded("receive deadline expired");
    int rc = ::poll(&pfd, 1, ms);
    if (rc == 0) return Status::DeadlineExceeded("receive deadline expired");
    if (rc < 0) {
      if (errno == EINTR) return Status::OK();
      return Errno("poll");
    }
    uint8_t chunk[16384];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      Close();
      return Status::Unavailable("peer closed connection");
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return Status::OK();
      }
      Close();
      return Errno("recv");
    }
    recv_buf_.insert(recv_buf_.end(), chunk, chunk + n);
    return Status::OK();
  }

  int fd_;
  Bytes recv_buf_;
};

}  // namespace

Status TcpServer::Start(Handler handler, uint16_t port) {
  if (running()) return Status::InvalidArgument("server already started");
  handler_ = std::move(handler);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) < 0) {
    Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    Status s = Errno("getsockname");
    ::close(fd);
    return s;
  }
  port_ = ntohs(addr.sin_port);

  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    Status s = Errno("pipe");
    ::close(fd);
    return s;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  listen_fd_ = fd;
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void TcpServer::Stop() {
  if (!running()) return;
  uint8_t b = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &b, 1);
  thread_.join();
  ::close(listen_fd_);
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
  listen_fd_ = -1;
  wake_read_fd_ = -1;
  wake_write_fd_ = -1;
  port_ = 0;
}

void TcpServer::Loop() {
  // Event loop on epoll (level-triggered): readiness is O(ready fds) per
  // wake-up instead of poll(2)'s O(all fds) scan + interest-list rebuild,
  // which is what lets one loop thread serve thousands of idle TDS
  // connections. Interest masks are updated with EPOLL_CTL_MOD only when a
  // connection's desired mask changes (reads pause at the buffer caps,
  // writes arm only while a reply backlog exists) — the backpressure
  // semantics are exactly the old poll loop's.
  std::unordered_map<int, Conn> conns;
  int epfd = ::epoll_create1(0);
  if (epfd < 0) return;
  auto arm = [&](int fd, uint32_t events) {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = events;
    ev.data.fd = fd;
    ::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev);
  };
  arm(wake_read_fd_, EPOLLIN);
  arm(listen_fd_, EPOLLIN);

  // Desired interest from the buffer state: stop reading while the receive
  // buffer or the unsent reply backlog is at its cap — level-triggered, so
  // the kernel re-delivers readiness once the mask re-arms.
  auto desired_interest = [&](const Conn& conn) -> uint32_t {
    uint32_t events = 0;
    size_t backlog = conn.out.size() - conn.out_pos;
    if (conn.in.size() < max_in_buffer_ && backlog < max_out_backlog_) {
      events |= EPOLLIN;
    }
    if (backlog > 0) events |= EPOLLOUT;
    return events;
  };
  auto update_interest = [&](int fd, Conn& conn) {
    uint32_t want = desired_interest(conn);
    if (want == conn.interest) return;
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = want;
    ev.data.fd = fd;
    ::epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &ev);
    conn.interest = want;
  };

  bool stop = false;
  std::vector<struct epoll_event> events(64);
  while (!stop) {
    int rc = ::epoll_wait(epfd, events.data(),
                          static_cast<int>(events.size()), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < rc; ++i) {
      int fd = events[i].data.fd;
      uint32_t revents = events[i].events;

      if (fd == wake_read_fd_) {
        stop = true;  // Stop() signalled.
        continue;
      }
      if (fd == listen_fd_) {
        for (;;) {
          int cfd = ::accept(listen_fd_, nullptr, nullptr);
          if (cfd < 0) break;
          if (!SetNonBlocking(cfd).ok()) {
            ::close(cfd);
            continue;
          }
          SetNoDelay(cfd);
          Conn fresh;
          fresh.interest = EPOLLIN;
          arm(cfd, EPOLLIN);
          conns.emplace(cfd, std::move(fresh));
        }
        continue;
      }

      auto conn_it = conns.find(fd);
      if (conn_it == conns.end()) continue;
      Conn& conn = conn_it->second;
      bool drop = false;

      if (revents & (EPOLLERR | EPOLLHUP)) drop = true;

      if (!drop && (revents & EPOLLIN)) {
        uint8_t chunk[16384];
        while (conn.in.size() < max_in_buffer_) {
          ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
          if (n > 0) {
            conn.in.insert(conn.in.end(), chunk, chunk + n);
            continue;
          }
          if (n == 0) drop = true;  // Peer closed.
          else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
            drop = true;
          break;
        }
      }

      if (!drop && conn.out_pos < conn.out.size()) {
        ssize_t n = ::send(fd, conn.out.data() + conn.out_pos,
                           conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
        if (n > 0) {
          conn.out_pos += static_cast<size_t>(n);
          if (conn.out_pos == conn.out.size()) {
            conn.out.clear();
            conn.out_pos = 0;
          }
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          drop = true;
        }
      }

      // Serve pipelined frames after the send above, pausing while the
      // reply backlog is at its cap. Frames that stay buffered here imply a
      // non-empty backlog, so the interest mask keeps EPOLLOUT armed and
      // this loop resumes once the peer drains replies — never a silent
      // stall.
      if (!drop) {
        Bytes frame;
        Status error;
        while (conn.out.size() - conn.out_pos < max_out_backlog_ &&
               TryExtractFrame(&conn.in, &frame, &error)) {
          Result<Bytes> reply = handler_(frame);
          if (!reply.ok()) {
            // The handler wraps application errors into reply payloads; a
            // failure here means the request frame itself was undecodable.
            drop = true;
            break;
          }
          AppendFrame(&conn.out, *reply);
        }
        if (!error.ok()) drop = true;  // Hostile length prefix.
      }

      if (drop) {
        ::close(fd);  // Also removes the fd from the epoll set.
        conns.erase(conn_it);
      } else {
        update_interest(fd, conn);
      }
    }
  }
  for (auto& [fd, conn] : conns) ::close(fd);
  ::close(epfd);
}

Result<std::unique_ptr<Channel>> TcpTransport::Connect() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host_);
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Errno("connect");
    ::close(fd);
    return s;
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  SetNoDelay(fd);
  return std::unique_ptr<Channel>(new TcpChannel(fd));
}

}  // namespace tcells::net
