#include "net/sharded_client.h"

#include <algorithm>

namespace tcells::net {

using ssi::AdversaryView;
using ssi::EncryptedItem;
using ssi::Partition;
using ssi::QueryPost;

namespace {

// splitmix64 finalizer: full-avalanche so sequential TDS ids spread evenly.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void MergeViews(AdversaryView* into, const AdversaryView& from) {
  for (const auto& [tag, count] : from.collection_tag_histogram) {
    into->collection_tag_histogram[tag] += count;
  }
  for (const auto& [tag, count] : from.aggregation_tag_histogram) {
    into->aggregation_tag_histogram[tag] += count;
  }
  into->collection_blob_sizes.insert(into->collection_blob_sizes.end(),
                                     from.collection_blob_sizes.begin(),
                                     from.collection_blob_sizes.end());
  into->collection_items += from.collection_items;
  into->aggregation_items += from.aggregation_items;
  into->filtering_items += from.filtering_items;
}

}  // namespace

size_t ShardedSsiClient::ShardOfTds(uint64_t tds_id) const {
  return static_cast<size_t>(Mix(tds_id) % shards_.size());
}

size_t ShardedSsiClient::ShardOfToken(uint64_t query_id, uint64_t token) const {
  return static_cast<size_t>(Mix(query_id ^ Mix(token)) % shards_.size());
}

size_t ShardedSsiClient::HomeShard(uint64_t query_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(query_id);
    if (it != queries_.end()) return it->second.home;
  }
  return static_cast<size_t>(Mix(query_id) % shards_.size());
}

Status ShardedSsiClient::PostGlobal(const QueryPost& post) {
  if (shards_.size() == 1) return shards_[0]->PostGlobal(post);
  for (size_t i = 0; i < shards_.size(); ++i) {
    Status st = shards_[i]->PostGlobal(post);
    if (!st.ok()) {
      // Roll back: earlier shards must not keep a half-posted query alive.
      for (size_t j = 0; j < i; ++j) {
        (void)shards_[j]->Retire(post.query_id);
      }
      return st;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  QueryState& state = queries_[post.query_id];
  state.personal = false;
  state.home = static_cast<size_t>(Mix(post.query_id) % shards_.size());
  state.size_bound = post.size_max_tuples;
  return Status::OK();
}

Status ShardedSsiClient::PostPersonal(uint64_t tds_id, const QueryPost& post) {
  if (shards_.size() == 1) return shards_[0]->PostPersonal(tds_id, post);
  size_t shard = ShardOfTds(tds_id);
  TCELLS_RETURN_IF_ERROR(shards_[shard]->PostPersonal(tds_id, post));
  std::lock_guard<std::mutex> lock(mu_);
  QueryState& state = queries_[post.query_id];
  state.personal = true;
  state.home = shard;
  state.size_bound = post.size_max_tuples;
  return Status::OK();
}

Result<std::vector<QueryPost>> ShardedSsiClient::FetchPosts(uint64_t tds_id) {
  if (shards_.size() == 1) return shards_[0]->FetchPosts(tds_id);
  return shards_[ShardOfTds(tds_id)]->FetchPosts(tds_id);
}

std::vector<Result<std::vector<QueryPost>>> ShardedSsiClient::FetchPostsBatch(
    const std::vector<uint64_t>& tds_ids) {
  if (shards_.size() == 1) return shards_[0]->FetchPostsBatch(tds_ids);
  // Group by owning shard, preserving per-shard submission order, so each
  // shard sees one batch; then scatter the replies back into input order.
  std::vector<std::vector<uint64_t>> ids_of(shards_.size());
  std::vector<std::vector<size_t>> slots_of(shards_.size());
  for (size_t i = 0; i < tds_ids.size(); ++i) {
    size_t shard = ShardOfTds(tds_ids[i]);
    ids_of[shard].push_back(tds_ids[i]);
    slots_of[shard].push_back(i);
  }
  std::vector<Result<std::vector<QueryPost>>> out(
      tds_ids.size(), Status::Unavailable("batched fetch not dispatched"));
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    if (ids_of[shard].empty()) continue;
    std::vector<Result<std::vector<QueryPost>>> replies =
        shards_[shard]->FetchPostsBatch(ids_of[shard]);
    for (size_t k = 0; k < replies.size() && k < slots_of[shard].size(); ++k) {
      out[slots_of[shard][k]] = std::move(replies[k]);
    }
  }
  return out;
}

Status ShardedSsiClient::Acknowledge(uint64_t tds_id, uint64_t query_id) {
  if (shards_.size() == 1) return shards_[0]->Acknowledge(tds_id, query_id);
  return shards_[ShardOfTds(tds_id)]->Acknowledge(tds_id, query_id);
}

Result<uint64_t> ShardedSsiClient::NumAcknowledged(uint64_t query_id) {
  if (shards_.size() == 1) return shards_[0]->NumAcknowledged(query_id);
  // Each TDS acknowledges on its own shard; shards without the query report
  // zero, so an unconditional sum is exact for global and personal posts.
  uint64_t total = 0;
  for (SsiApi* shard : shards_) {
    TCELLS_ASSIGN_OR_RETURN(uint64_t n, shard->NumAcknowledged(query_id));
    total += n;
  }
  return total;
}

Status ShardedSsiClient::PostEpochBlock(const Bytes& block) {
  for (SsiApi* shard : shards_) {
    TCELLS_RETURN_IF_ERROR(shard->PostEpochBlock(block));
  }
  return Status::OK();
}

Result<Bytes> ShardedSsiClient::FetchEpochBlock(uint64_t tds_id) {
  return shards_[ShardOfTds(tds_id)]->FetchEpochBlock(tds_id);
}

Result<bool> ShardedSsiClient::SizeReached(uint64_t query_id) {
  if (shards_.size() == 1) return shards_[0]->SizeReached(query_id);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound("no active query for SizeReached");
  }
  const QueryState& state = it->second;
  return state.size_bound && state.accepted_items >= *state.size_bound;
}

Result<bool> ShardedSsiClient::UploadCollection(
    uint64_t query_id, uint64_t tds_id,
    const std::vector<EncryptedItem>& items) {
  if (shards_.size() == 1) {
    return shards_[0]->UploadCollection(query_id, tds_id, items);
  }
  size_t shard = ShardOfTds(tds_id);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::NotFound("no active query for UploadCollection");
    }
    const QueryState& state = it->second;
    if (state.size_bound && state.accepted_items >= *state.size_bound) {
      // Globally full. The shard's local count is below the bound, so it
      // would wrongly accept; discard here instead, with the same observable
      // effects as a node-side discard: the TDS still counts as having
      // served the query, and the contribution is dropped.
      TCELLS_RETURN_IF_ERROR(shards_[shard]->Acknowledge(tds_id, query_id));
      return false;
    }
  }
  TCELLS_ASSIGN_OR_RETURN(
      bool accepted, shards_[shard]->UploadCollection(query_id, tds_id, items));
  if (accepted) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(query_id);
    if (it != queries_.end()) {
      it->second.accepted_items += items.size();
      it->second.upload_log.emplace_back(shard, items.size());
    }
  }
  return accepted;
}

std::vector<Result<bool>> ShardedSsiClient::UploadCollectionBatch(
    const std::vector<CollectionUpload>& uploads) {
  if (shards_.size() == 1) return shards_[0]->UploadCollectionBatch(uploads);

  // Phase 1 — decide every accept bit in submission order under one lock.
  // The router only forwards an upload while the global count is below the
  // bound; the owning shard's local count is then necessarily below the
  // bound too, so an honest shard always accepts. That makes the serial
  // accounting computable up front: SIZE cutoffs land between exactly the
  // two uploads a one-by-one caller would see.
  enum class Verdict { kForward, kShortCircuit, kNotFound };
  struct Plan {
    Verdict verdict = Verdict::kNotFound;
    size_t shard = 0;
    size_t log_index = 0;  ///< upload_log slot, for rollback on divergence.
  };
  std::vector<Plan> plans(uploads.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < uploads.size(); ++i) {
      const CollectionUpload& u = uploads[i];
      plans[i].shard = ShardOfTds(u.tds_id);
      auto it = queries_.find(u.query_id);
      if (it == queries_.end()) continue;  // kNotFound
      QueryState& state = it->second;
      if (state.size_bound && state.accepted_items >= *state.size_bound) {
        plans[i].verdict = Verdict::kShortCircuit;
        continue;
      }
      plans[i].verdict = Verdict::kForward;
      plans[i].log_index = state.upload_log.size();
      state.accepted_items += u.items.size();
      state.upload_log.emplace_back(plans[i].shard, u.items.size());
    }
  }

  // Phase 2 — fan the forwarded uploads out, one sub-batch per shard in
  // per-shard submission order; short-circuited uploads only cost an ack.
  std::vector<Result<bool>> out(
      uploads.size(), Status::Unavailable("batched upload not dispatched"));
  std::vector<std::vector<CollectionUpload>> batch_of(shards_.size());
  std::vector<std::vector<size_t>> slots_of(shards_.size());
  for (size_t i = 0; i < uploads.size(); ++i) {
    switch (plans[i].verdict) {
      case Verdict::kNotFound:
        out[i] = Status::NotFound("no active query for UploadCollection");
        break;
      case Verdict::kShortCircuit: {
        Status st = shards_[plans[i].shard]->Acknowledge(uploads[i].tds_id,
                                                         uploads[i].query_id);
        out[i] = st.ok() ? Result<bool>(false) : Result<bool>(st);
        break;
      }
      case Verdict::kForward:
        batch_of[plans[i].shard].push_back(uploads[i]);
        slots_of[plans[i].shard].push_back(i);
        break;
    }
  }
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    if (batch_of[shard].empty()) continue;
    std::vector<Result<bool>> replies =
        shards_[shard]->UploadCollectionBatch(batch_of[shard]);
    for (size_t k = 0; k < replies.size() && k < slots_of[shard].size(); ++k) {
      out[slots_of[shard][k]] = std::move(replies[k]);
    }
  }

  // Phase 3 — reconcile divergence. A transport failure or a byzantine
  // reject means the predicted accounting overcounts; take those entries
  // back out of the log (highest index first so earlier indices stay valid).
  std::vector<size_t> rollback;
  for (size_t i = 0; i < uploads.size(); ++i) {
    if (plans[i].verdict != Verdict::kForward) continue;
    if (out[i].ok() && *out[i]) continue;
    rollback.push_back(i);
  }
  if (!rollback.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    std::sort(rollback.begin(), rollback.end(),
              [&](size_t a, size_t b) {
                return plans[a].log_index > plans[b].log_index;
              });
    for (size_t i : rollback) {
      auto it = queries_.find(uploads[i].query_id);
      if (it == queries_.end()) continue;
      QueryState& state = it->second;
      state.accepted_items -= std::min<uint64_t>(state.accepted_items,
                                                 uploads[i].items.size());
      if (plans[i].log_index < state.upload_log.size()) {
        state.upload_log.erase(state.upload_log.begin() +
                               static_cast<ptrdiff_t>(plans[i].log_index));
      }
    }
  }
  return out;
}

Result<std::vector<EncryptedItem>> ShardedSsiClient::TakeCollected(
    uint64_t query_id) {
  if (shards_.size() == 1) return shards_[0]->TakeCollected(query_id);
  std::vector<std::pair<size_t, uint64_t>> log;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::NotFound("no active query for TakeCollected");
    }
    log = it->second.upload_log;
  }
  // Drain every shard that received an accepted upload, then re-interleave
  // the per-shard streams along the serial upload log so the merged vector
  // is byte-for-byte the arrival order a single node would have stored.
  std::map<size_t, std::vector<EncryptedItem>> per_shard;
  for (const auto& [shard, count] : log) {
    (void)count;
    if (!per_shard.count(shard)) {
      TCELLS_ASSIGN_OR_RETURN(per_shard[shard],
                              shards_[shard]->TakeCollected(query_id));
    }
  }
  std::vector<EncryptedItem> merged;
  std::map<size_t, size_t> cursor;
  for (const auto& [shard, count] : log) {
    std::vector<EncryptedItem>& src = per_shard[shard];
    size_t& pos = cursor[shard];
    for (uint64_t k = 0; k < count && pos < src.size(); ++k, ++pos) {
      merged.push_back(std::move(src[pos]));
    }
  }
  // Anything beyond the log (a byzantine shard inventing items) is appended
  // in shard order so even hostile worlds stay deterministic.
  for (auto& [shard, src] : per_shard) {
    for (size_t pos = cursor[shard]; pos < src.size(); ++pos) {
      merged.push_back(std::move(src[pos]));
    }
  }
  return merged;
}

Status ShardedSsiClient::StagePartition(uint64_t query_id, uint64_t token,
                                        const Partition& partition) {
  return shards_[ShardOfToken(query_id, token)]->StagePartition(
      query_id, token, partition);
}

Result<Partition> ShardedSsiClient::FetchPartition(uint64_t query_id,
                                                   uint64_t token) {
  return shards_[ShardOfToken(query_id, token)]->FetchPartition(query_id,
                                                                token);
}

Status ShardedSsiClient::UploadRoundOutput(
    uint64_t query_id, uint64_t token,
    const std::vector<EncryptedItem>& items) {
  return shards_[ShardOfToken(query_id, token)]->UploadRoundOutput(
      query_id, token, items);
}

Result<std::vector<EncryptedItem>> ShardedSsiClient::TakeRoundOutput(
    uint64_t query_id, uint64_t token) {
  return shards_[ShardOfToken(query_id, token)]->TakeRoundOutput(query_id,
                                                                 token);
}

Status ShardedSsiClient::ObserveAggregation(
    uint64_t query_id, const std::vector<EncryptedItem>& items) {
  return shards_[HomeShard(query_id)]->ObserveAggregation(query_id, items);
}

Status ShardedSsiClient::ObserveFiltering(
    uint64_t query_id, const std::vector<EncryptedItem>& items) {
  return shards_[HomeShard(query_id)]->ObserveFiltering(query_id, items);
}

Status ShardedSsiClient::DeliverResult(
    uint64_t query_id, const std::vector<EncryptedItem>& items) {
  return shards_[HomeShard(query_id)]->DeliverResult(query_id, items);
}

Result<std::vector<EncryptedItem>> ShardedSsiClient::FetchResult(
    uint64_t query_id) {
  return shards_[HomeShard(query_id)]->FetchResult(query_id);
}

Result<AdversaryView> ShardedSsiClient::GetAdversaryView(uint64_t query_id) {
  if (shards_.size() == 1) return shards_[0]->GetAdversaryView(query_id);
  bool personal;
  size_t home;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::NotFound("no active query for GetAdversaryView");
    }
    personal = it->second.personal;
    home = it->second.home;
  }
  if (personal) return shards_[home]->GetAdversaryView(query_id);
  AdversaryView merged;
  for (SsiApi* shard : shards_) {
    TCELLS_ASSIGN_OR_RETURN(AdversaryView view,
                            shard->GetAdversaryView(query_id));
    MergeViews(&merged, view);
  }
  return merged;
}

Status ShardedSsiClient::Retire(uint64_t query_id) {
  if (shards_.size() == 1) return shards_[0]->Retire(query_id);
  bool personal = false;
  size_t home = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::NotFound("no active query for Retire");
    }
    personal = it->second.personal;
    home = it->second.home;
    queries_.erase(it);
  }
  // Every shard may hold round transfer state for this query's tokens, so
  // retire everywhere. A personal query's hub entry only exists on its home
  // shard; the other shards clear transfer remnants and then report NotFound
  // from the querybox, which is expected and benign.
  Status first_error = Status::OK();
  for (size_t i = 0; i < shards_.size(); ++i) {
    Status st = shards_[i]->Retire(query_id);
    if (st.ok()) continue;
    if (personal && i != home && st.IsNotFound()) continue;
    if (first_error.ok()) first_error = st;
  }
  return first_error;
}

}  // namespace tcells::net
