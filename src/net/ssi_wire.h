// Request/reply wire schema for the SSI RPC surface. Every request frame is
// a u8 message type followed by type-specific fields; every reply frame is a
// u8 status code followed by the body (on OK) or a message string (on error).
// Item vectors travel as ssi::Partition encodings, so the transport reuses
// the hardened decoders instead of inventing new ones.
//
// Application-level statuses (NotFound, InvalidArgument, ...) ride INSIDE an
// OK transport exchange as reply envelopes; only transport-level failures
// (Unavailable, DeadlineExceeded) come from the channel itself. The client
// retries the latter and never the former.
#ifndef TCELLS_NET_SSI_WIRE_H_
#define TCELLS_NET_SSI_WIRE_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"

namespace tcells::net {

enum class MsgType : uint8_t {
  kPostGlobal = 1,        ///< QueryPost → ()
  kPostPersonal = 2,      ///< u64 tds_id, QueryPost → ()
  kFetchPosts = 3,        ///< u64 tds_id → u32 n, n × (u32-len QueryPost)
  kAcknowledge = 4,       ///< u64 tds_id, u64 query_id → ()
  kNumAcknowledged = 5,   ///< u64 query_id → u64
  kSizeReached = 6,       ///< u64 query_id → u8 bool
  kUploadCollection = 7,  ///< u64 query_id, u64 tds_id, Partition → u8 accepted
  kTakeCollected = 8,     ///< u64 query_id → Partition
  kStagePartition = 9,    ///< u64 query_id, u64 token, Partition → ()
  kFetchPartition = 10,   ///< u64 query_id, u64 token → Partition
  kUploadRoundOutput = 11,///< u64 query_id, u64 token, Partition → ()
  kTakeRoundOutput = 12,  ///< u64 query_id, u64 token → Partition (re-readable)
  kObserveAggregation = 13,  ///< u64 query_id, Partition → ()
  kObserveFiltering = 14,    ///< u64 query_id, Partition → ()
  kDeliverResult = 15,    ///< u64 query_id, Partition → ()
  kFetchResult = 16,      ///< u64 query_id → Partition
  kAdversaryView = 17,    ///< u64 query_id → AdversaryView
  kRetire = 18,           ///< u64 query_id → ()
  kAckRoundOutput = 19,   ///< u64 query_id, u64 token → () (idempotent erase)
};

/// Reply envelope: u8 StatusCode + body (OK) or message string (error).
Bytes EncodeReplyOk(const Bytes& body);
Bytes EncodeReplyError(const Status& status);

/// Unwraps a reply envelope: the body on OK, the reconstructed application
/// Status otherwise. Corruption when the envelope itself is malformed.
Result<Bytes> DecodeReply(const Bytes& reply);

}  // namespace tcells::net

#endif  // TCELLS_NET_SSI_WIRE_H_
