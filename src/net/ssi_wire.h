// Request/reply wire schema for the SSI RPC surface. Every request frame is
// a u8 message type followed by type-specific fields; every reply frame is a
// u8 status code followed by the body (on OK) or a message string (on error).
// Item vectors travel as ssi::Partition encodings, so the transport reuses
// the hardened decoders instead of inventing new ones.
//
// Application-level statuses (NotFound, InvalidArgument, ...) ride INSIDE an
// OK transport exchange as reply envelopes; only transport-level failures
// (Unavailable, DeadlineExceeded) come from the channel itself. The client
// retries the latter and never the former.
// Batching (docs/TRANSPORT.md "Batched & pipelined exchanges"): many logical
// calls can share one physical frame. A batch frame is distinguished from a
// single-call frame by its leading byte — kBatchMagic sits outside both the
// MsgType range (requests) and the StatusCode range (replies), so version-1
// single-call frames still parse unchanged on both sides. Each batched call
// carries a u64 correlation ID; replies are matched by ID, never by position,
// so a server may complete them out of order.
#ifndef TCELLS_NET_SSI_WIRE_H_
#define TCELLS_NET_SSI_WIRE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace tcells::net {

enum class MsgType : uint8_t {
  kPostGlobal = 1,        ///< QueryPost → ()
  kPostPersonal = 2,      ///< u64 tds_id, QueryPost → ()
  kFetchPosts = 3,        ///< u64 tds_id → u32 n, n × (u32-len QueryPost)
  kAcknowledge = 4,       ///< u64 tds_id, u64 query_id → ()
  kNumAcknowledged = 5,   ///< u64 query_id → u64
  kSizeReached = 6,       ///< u64 query_id → u8 bool
  kUploadCollection = 7,  ///< u64 query_id, u64 tds_id, Partition → u8 accepted
  kTakeCollected = 8,     ///< u64 query_id → Partition
  kStagePartition = 9,    ///< u64 query_id, u64 token, Partition → ()
  kFetchPartition = 10,   ///< u64 query_id, u64 token → Partition
  kUploadRoundOutput = 11,///< u64 query_id, u64 token, Partition → ()
  kTakeRoundOutput = 12,  ///< u64 query_id, u64 token → Partition (re-readable)
  kObserveAggregation = 13,  ///< u64 query_id, Partition → ()
  kObserveFiltering = 14,    ///< u64 query_id, Partition → ()
  kDeliverResult = 15,    ///< u64 query_id, Partition → ()
  kFetchResult = 16,      ///< u64 query_id → Partition
  kAdversaryView = 17,    ///< u64 query_id → AdversaryView
  kRetire = 18,           ///< u64 query_id → ()
  kAckRoundOutput = 19,   ///< u64 query_id, u64 token → () (idempotent erase)
  kPostEpochBlock = 20,   ///< encoded keys::EpochBlock → () (opaque to SSI)
  kFetchEpochBlock = 21,  ///< u64 tds_id → encoded keys::EpochBlock
};

/// Reply envelope: u8 StatusCode + body (OK) or message string (error).
Bytes EncodeReplyOk(const Bytes& body);
Bytes EncodeReplyError(const Status& status);

/// Unwraps a reply envelope: the body on OK, the reconstructed application
/// Status otherwise. Corruption when the envelope itself is malformed.
Result<Bytes> DecodeReply(const Bytes& reply);

// ---- Multi-call batch envelope ----

/// Leading byte of a batch frame. 0xB5 collides with no MsgType (1..21) and
/// no StatusCode (0..12), so a receiver can tell the frame kinds apart from
/// the first byte alone.
inline constexpr uint8_t kBatchMagic = 0xB5;
/// Wire version of the batch envelope; bumped on incompatible layout change.
inline constexpr uint8_t kBatchVersion = 1;
/// Hard cap on calls per batch frame, far above any client flush policy.
/// Enforced at decode before any allocation.
inline constexpr uint32_t kMaxCallsPerBatch = 4096;

/// One logical call (or its reply envelope) inside a batch frame. The
/// payload is exactly the bytes a single-call frame would carry: a u8
/// MsgType request on the way out, a u8-status reply envelope on the way
/// back.
struct BatchCall {
  uint64_t correlation_id = 0;
  Bytes payload;
};

/// True when `frame` is a batch frame (leading byte == kBatchMagic). An
/// empty frame is not a batch frame.
bool IsBatchFrame(const Bytes& frame);

/// Encodes `calls` as one batch frame:
///   u8 kBatchMagic, u8 version, u32 count,
///   count x { u64 correlation_id, u32 payload_len, payload }.
/// The same envelope carries requests and replies.
Bytes EncodeBatchFrame(const std::vector<BatchCall>& calls);

/// Decodes a batch frame. Corruption on a bad magic/version, a count that
/// exceeds kMaxCallsPerBatch or the bytes actually present (checked before
/// any allocation), a payload length overrunning the frame, or trailing
/// bytes after the last call.
Result<std::vector<BatchCall>> DecodeBatchFrame(const Bytes& frame);

}  // namespace tcells::net

#endif  // TCELLS_NET_SSI_WIRE_H_
