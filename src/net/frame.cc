#include "net/frame.h"

namespace tcells::net {

void AppendFrame(Bytes* out, const uint8_t* payload, size_t n) {
  ByteWriter w(out);
  w.PutU32(static_cast<uint32_t>(n));
  w.PutRaw(payload, n);
}

Result<Bytes> DecodeFrame(ByteReader* reader) {
  TCELLS_ASSIGN_OR_RETURN(uint32_t len, reader->GetU32());
  if (len > kMaxFramePayload) {
    return Status::Corruption("frame length exceeds cap");
  }
  if (len > reader->remaining()) {
    return Status::Corruption("frame length exceeds remaining bytes");
  }
  return reader->GetRaw(len);
}

bool TryExtractFrame(Bytes* buf, Bytes* frame, Status* error) {
  *error = Status::OK();
  if (buf->size() < 4) return false;
  uint32_t len = static_cast<uint32_t>((*buf)[0]) |
                 (static_cast<uint32_t>((*buf)[1]) << 8) |
                 (static_cast<uint32_t>((*buf)[2]) << 16) |
                 (static_cast<uint32_t>((*buf)[3]) << 24);
  if (len > kMaxFramePayload) {
    // Reject before any allocation: the peer claimed a payload the protocol
    // never produces, so this is either corruption or an attack.
    *error = Status::Corruption("frame length exceeds cap");
    return false;
  }
  if (buf->size() < FrameWireSize(len)) return false;
  frame->assign(buf->begin() + 4, buf->begin() + 4 + len);
  buf->erase(buf->begin(), buf->begin() + 4 + len);
  return true;
}

}  // namespace tcells::net
