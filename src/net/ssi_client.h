// SsiClient: the typed client of the SSI RPC surface. Every querier/TDS
// interaction the protocol engine performs goes through one of these methods,
// which encode the request, push it through a Channel as one frame, retry
// transport-level failures (Unavailable / DeadlineExceeded) with bounded
// exponential backoff, and decode the reply envelope back into the
// application Status/value.
//
// Thread-safety: Call is serialized by a mutex, so the parallel round
// fan-out can share one client. Application-level errors returned by the
// SSI (NotFound, InvalidArgument, ...) are never retried — only the
// transport's own failures are.
#ifndef TCELLS_NET_SSI_CLIENT_H_
#define TCELLS_NET_SSI_CLIENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "net/channel.h"
#include "net/ssi_api.h"
#include "obs/metrics.h"
#include "ssi/messages.h"
#include "ssi/ssi.h"

namespace tcells::net {

/// Retry schedule for transport-level failures. Attempt k (0-based) sleeps
/// `min(backoff_seconds * 2^k, backoff_cap_seconds)` of wall clock before
/// retrying; after `max_attempts` total attempts the last error is returned
/// and the caller decides whether the query degrades or fails.
struct RetryPolicy {
  size_t max_attempts = 3;
  double deadline_seconds = 5.0;
  double backoff_seconds = 0.001;
  double backoff_cap_seconds = 0.25;
  /// Clock the backoff sleeps go through. Null = the real wall clock; tests
  /// and deterministic campaigns inject a VirtualClock so retries complete
  /// instantly and the backoff schedule is assertable exactly.
  Clock* clock = nullptr;
};

class SsiClient : public SsiApi {
 public:
  /// `transport` and `metrics` (optional) are borrowed and must outlive the
  /// client. Channels are dialed lazily and re-dialed after any transport
  /// failure (Unavailable or DeadlineExceeded) — an abandoned call's reply
  /// must never be consumed by a later exchange on the same channel.
  explicit SsiClient(Transport* transport, RetryPolicy policy = {},
                     obs::MetricsRegistry* metrics = nullptr)
      : transport_(transport), policy_(policy), metrics_(metrics) {}

  // ---- Querybox ----
  Status PostGlobal(const ssi::QueryPost& post) override;
  Status PostPersonal(uint64_t tds_id, const ssi::QueryPost& post) override;
  Result<std::vector<ssi::QueryPost>> FetchPosts(uint64_t tds_id) override;
  Status Acknowledge(uint64_t tds_id, uint64_t query_id) override;
  Result<uint64_t> NumAcknowledged(uint64_t query_id) override;

  // ---- Collection phase ----
  Result<bool> SizeReached(uint64_t query_id) override;
  Result<bool> UploadCollection(
      uint64_t query_id, uint64_t tds_id,
      const std::vector<ssi::EncryptedItem>& items) override;
  Result<std::vector<ssi::EncryptedItem>> TakeCollected(
      uint64_t query_id) override;

  // ---- Aggregation / filtering rounds ----
  Status StagePartition(uint64_t query_id, uint64_t token,
                        const ssi::Partition& partition) override;
  Result<ssi::Partition> FetchPartition(uint64_t query_id,
                                        uint64_t token) override;
  Status UploadRoundOutput(
      uint64_t query_id, uint64_t token,
      const std::vector<ssi::EncryptedItem>& items) override;
  /// Two-phase: downloads the round output (a retried fetch after a lost
  /// reply re-downloads the same bytes), then acks so the SSI erases the
  /// token's transfer state.
  Result<std::vector<ssi::EncryptedItem>> TakeRoundOutput(
      uint64_t query_id, uint64_t token) override;
  Status ObserveAggregation(
      uint64_t query_id, const std::vector<ssi::EncryptedItem>& items) override;
  Status ObserveFiltering(
      uint64_t query_id, const std::vector<ssi::EncryptedItem>& items) override;

  // ---- Result delivery / teardown ----
  Status DeliverResult(
      uint64_t query_id, const std::vector<ssi::EncryptedItem>& items) override;
  Result<std::vector<ssi::EncryptedItem>> FetchResult(
      uint64_t query_id) override;
  Result<ssi::AdversaryView> GetAdversaryView(uint64_t query_id) override;
  Status Retire(uint64_t query_id) override;

  const RetryPolicy& policy() const { return policy_; }

 private:
  /// One RPC: frame out, frame in, retries + metrics, envelope decoded.
  Result<Bytes> Call(const Bytes& request);

  Transport* transport_;
  RetryPolicy policy_;
  obs::MetricsRegistry* metrics_;
  std::mutex mu_;
  std::unique_ptr<Channel> channel_;
};

}  // namespace tcells::net

#endif  // TCELLS_NET_SSI_CLIENT_H_
