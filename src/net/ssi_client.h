// SsiClient: the typed client of the SSI RPC surface. Every querier/TDS
// interaction the protocol engine performs goes through one of these methods,
// which encode the request, push it through a Channel, retry transport-level
// failures (Unavailable / DeadlineExceeded) with bounded exponential backoff,
// and decode the reply envelope back into the application Status/value.
//
// Submission is asynchronous underneath: CallAsync enqueues an encoded
// request and returns a completion token; Await blocks until that call's
// reply arrives. Queued calls are flushed as multi-call batch frames
// (ssi_wire.h) under a flush policy — at most BatchOptions::max_calls_per_frame
// calls / max_bytes_per_frame payload bytes per frame, and any Await forces
// the queue out immediately. Replies are matched to calls by correlation ID,
// so a server may complete them out of order; every retry re-correlates the
// whole frame with fresh IDs and replies carrying stale or duplicate IDs are
// dropped. Up to max_inflight_frames frames can be on the wire at once
// (each on its own channel), so many threads sharing one client pipeline
// their calls instead of serializing behind a single exchange.
//
// With max_calls_per_frame == 1 (the default) every call travels exactly as
// the version-1 single-call wire format — byte-identical frames, metrics and
// retry behaviour to the pre-batching client.
//
// Thread-safety: all methods may be called concurrently. Application-level
// errors returned by the SSI (NotFound, InvalidArgument, ...) are never
// retried — only the transport's own failures are.
#ifndef TCELLS_NET_SSI_CLIENT_H_
#define TCELLS_NET_SSI_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "net/channel.h"
#include "net/ssi_api.h"
#include "obs/metrics.h"
#include "ssi/messages.h"
#include "ssi/ssi.h"

namespace tcells::net {

/// Retry schedule for transport-level failures. Attempt k (0-based) sleeps
/// `min(backoff_seconds * 2^k, backoff_cap_seconds)` of wall clock before
/// retrying; after `max_attempts` total attempts the last error is returned
/// and the caller decides whether the query degrades or fails.
struct RetryPolicy {
  size_t max_attempts = 3;
  double deadline_seconds = 5.0;
  double backoff_seconds = 0.001;
  double backoff_cap_seconds = 0.25;
  /// Clock the backoff sleeps go through. Null = the real wall clock; tests
  /// and deterministic campaigns inject a VirtualClock so retries complete
  /// instantly and the backoff schedule is assertable exactly.
  Clock* clock = nullptr;
};

/// Flush policy of the batched submission path (docs/TRANSPORT.md "Batched &
/// pipelined exchanges").
struct BatchOptions {
  /// Calls coalesced into one physical frame, at most. 1 = batching off:
  /// every call travels as a bare single-call frame (the legacy wire format).
  size_t max_calls_per_frame = 1;
  /// Payload bytes coalesced into one frame, at most (a single oversized
  /// call still ships alone).
  size_t max_bytes_per_frame = 1u << 20;
  /// Frames on the wire at once, each on its own channel. Extra flushers
  /// wait for a slot.
  size_t max_inflight_frames = 4;
};

class SsiClient : public SsiApi {
 public:
  /// Completion token of one asynchronous call; redeem with Await exactly
  /// once.
  using CallToken = uint64_t;

  /// `transport` and `metrics` (optional) are borrowed and must outlive the
  /// client. Channels are dialed lazily and re-dialed after any transport
  /// failure (Unavailable or DeadlineExceeded) — an abandoned call's reply
  /// must never be consumed by a later exchange on the same channel.
  explicit SsiClient(Transport* transport, RetryPolicy policy = {},
                     obs::MetricsRegistry* metrics = nullptr,
                     BatchOptions batch = {})
      : transport_(transport),
        policy_(policy),
        batch_(batch),
        metrics_(metrics) {}

  // ---- Generic async submission ----

  /// Enqueues one encoded request (u8 MsgType + fields) for the next frame;
  /// never blocks. The call is flushed when the pending frame fills
  /// (max_calls/max_bytes) or any Await runs.
  CallToken CallAsync(Bytes request);
  /// Blocks until `token`'s reply is in, flushing the queue as needed, and
  /// returns the decoded reply body (or the application/transport error).
  /// Consumes the token.
  Result<Bytes> Await(CallToken token);
  /// Drains the queue and waits for every in-flight frame, so detached
  /// calls are on the wire before the client goes away.
  void Flush();

  // ---- Querybox ----
  Status PostGlobal(const ssi::QueryPost& post) override;
  Status PostPersonal(uint64_t tds_id, const ssi::QueryPost& post) override;
  Result<std::vector<ssi::QueryPost>> FetchPosts(uint64_t tds_id) override;
  std::vector<Result<std::vector<ssi::QueryPost>>> FetchPostsBatch(
      const std::vector<uint64_t>& tds_ids) override;
  Status Acknowledge(uint64_t tds_id, uint64_t query_id) override;
  Result<uint64_t> NumAcknowledged(uint64_t query_id) override;

  // ---- Key epoch distribution ----
  Status PostEpochBlock(const Bytes& block) override;
  Result<Bytes> FetchEpochBlock(uint64_t tds_id) override;

  // ---- Collection phase ----
  Result<bool> SizeReached(uint64_t query_id) override;
  Result<bool> UploadCollection(
      uint64_t query_id, uint64_t tds_id,
      const std::vector<ssi::EncryptedItem>& items) override;
  std::vector<Result<bool>> UploadCollectionBatch(
      const std::vector<CollectionUpload>& uploads) override;
  Result<std::vector<ssi::EncryptedItem>> TakeCollected(
      uint64_t query_id) override;

  // ---- Aggregation / filtering rounds ----
  Status StagePartition(uint64_t query_id, uint64_t token,
                        const ssi::Partition& partition) override;
  Result<ssi::Partition> FetchPartition(uint64_t query_id,
                                        uint64_t token) override;
  Status UploadRoundOutput(
      uint64_t query_id, uint64_t token,
      const std::vector<ssi::EncryptedItem>& items) override;
  /// Two-phase: downloads the round output (a retried fetch after a lost
  /// reply re-downloads the same bytes), then acks so the SSI erases the
  /// token's transfer state. In batched mode the ack rides detached in a
  /// later frame (piggybacking on the next call) instead of costing its own
  /// round trip.
  Result<std::vector<ssi::EncryptedItem>> TakeRoundOutput(
      uint64_t query_id, uint64_t token) override;
  Status ObserveAggregation(
      uint64_t query_id, const std::vector<ssi::EncryptedItem>& items) override;
  Status ObserveFiltering(
      uint64_t query_id, const std::vector<ssi::EncryptedItem>& items) override;

  // ---- Result delivery / teardown ----
  Status DeliverResult(
      uint64_t query_id, const std::vector<ssi::EncryptedItem>& items) override;
  Result<std::vector<ssi::EncryptedItem>> FetchResult(
      uint64_t query_id) override;
  Result<ssi::AdversaryView> GetAdversaryView(uint64_t query_id) override;
  Status Retire(uint64_t query_id) override;

  const RetryPolicy& policy() const { return policy_; }
  const BatchOptions& batch_options() const { return batch_; }
  bool batching_enabled() const { return batch_.max_calls_per_frame > 1; }

 private:
  /// One pending call: its encoded request until dispatch, its reply
  /// envelope (or transport error) once the frame completes.
  struct Pending {
    Bytes request;
    bool dispatched = false;
    bool done = false;
    /// Nobody Awaits this call; its reply is discarded on arrival
    /// (best-effort acks).
    bool detached = false;
    Result<Bytes> reply{Status::Unavailable("call not completed")};
  };

  /// One sync RPC: enqueue + await (the pre-batching Call surface).
  Result<Bytes> Call(Bytes request);
  /// Detached enqueue: flushed with a later frame, reply discarded.
  void CallDetached(Bytes request);
  CallToken EnqueueLocked(Bytes request, bool detached);
  /// Seals up to one frame's worth of queued calls and performs the
  /// exchange (lock released during I/O). Requires a free in-flight slot.
  void DispatchChunk(std::unique_lock<std::mutex>* lock);
  /// The physical exchange + retry loop for one sealed frame; returns one
  /// reply envelope (or error) per request, in order. Runs unlocked.
  /// `channel` is this flusher's private connection — dialed lazily, reset on
  /// transport failure, and handed back for pooling when the exchange ends.
  std::vector<Result<Bytes>> ExchangeFrame(const std::vector<Bytes>& requests,
                                           std::unique_ptr<Channel>* channel);
  /// Ships `requests` as a sequence of frames from the calling thread, one
  /// frame at a time in submission order, bypassing the shared queue. The
  /// batch methods whose server-side effects are order-sensitive (collection
  /// uploads fix the hub's storage order) use this instead of CallAsync, so
  /// a concurrent flusher can never reorder them across frames. Returns the
  /// decoded reply body (or error) per request, in order.
  std::vector<Result<Bytes>> ExchangeOrdered(std::vector<Bytes> requests);

  Transport* transport_;
  RetryPolicy policy_;
  BatchOptions batch_;
  obs::MetricsRegistry* metrics_;

  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_token_ = 1;
  std::atomic<uint64_t> next_correlation_{1};
  std::map<CallToken, Pending> calls_;
  std::deque<CallToken> queue_;
  size_t inflight_frames_ = 0;
  size_t inflight_calls_ = 0;
  /// Idle channel pool, one per concurrent frame at most.
  std::vector<std::unique_ptr<Channel>> channels_;
};

}  // namespace tcells::net

#endif  // TCELLS_NET_SSI_CLIENT_H_
