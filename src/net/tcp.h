// Real-socket transport backend: the SSI listens on a TCP port and every
// querier / TDS interaction travels as length-prefixed frames over a
// connection to it. The server runs a single poll(2) loop on its own thread
// (listener + one receive buffer per connection, frames dispatched inline to
// the handler); the client side honors per-call deadlines with poll timeouts.
//
// Error mapping at the channel surface: connection loss, reset, or peer
// close mid-frame → Unavailable (retryable); deadline expiry → DeadlineExceeded
// (retryable); a hostile length prefix → Corruption (fatal, the stream cannot
// be re-synchronized, so the connection is dropped).
#ifndef TCELLS_NET_TCP_H_
#define TCELLS_NET_TCP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>

#include "net/channel.h"
#include "net/frame.h"

namespace tcells::net {

/// Framed request/reply server bound to 127.0.0.1. Start() binds + listens
/// and spawns the poll loop; Stop() (or the destructor) wakes the loop, joins
/// the thread and closes every connection.
class TcpServer {
 public:
  TcpServer() = default;
  ~TcpServer() { Stop(); }

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// `port == 0` picks an ephemeral port; see port() after Start succeeds.
  /// `handler` is invoked on the server thread, one frame at a time.
  Status Start(Handler handler, uint16_t port = 0);
  void Stop();

  uint16_t port() const { return port_; }
  bool running() const { return listen_fd_ >= 0; }

  /// Per-connection buffer caps, in bytes. The loop stops reading from a
  /// connection while its receive buffer holds `max_in` bytes or its unsent
  /// reply backlog reaches `max_out_backlog`, and it defers serving further
  /// pipelined frames until the peer drains replies — so a peer that floods
  /// requests or never reads replies cannot grow the buffers without bound.
  /// Each cap must be at least one full frame (`FrameWireSize` of the
  /// largest expected payload) for progress; the defaults hold one maximum
  /// frame. Call before Start().
  void set_buffer_caps(size_t max_in, size_t max_out_backlog) {
    max_in_buffer_ = max_in;
    max_out_backlog_ = max_out_backlog;
  }

 private:
  void Loop();

  Handler handler_;
  size_t max_in_buffer_ = FrameWireSize(kMaxFramePayload);
  size_t max_out_backlog_ = FrameWireSize(kMaxFramePayload);
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

/// Channel factory that dials `host:port` once per Connect().
class TcpTransport : public Transport {
 public:
  TcpTransport(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}

  Result<std::unique_ptr<Channel>> Connect() override;
  const char* name() const override { return "tcp"; }

 private:
  std::string host_;
  uint16_t port_;
};

}  // namespace tcells::net

#endif  // TCELLS_NET_TCP_H_
