// SsiApi: the abstract SSI RPC surface as seen by the protocol engine.
//
// Everything a querier or TDS does against the honest-but-curious server —
// querybox traffic, collection uploads, round staging/fetching, result
// delivery, exposure introspection, teardown — is one of these calls. Two
// implementations exist:
//
//   - net::SsiClient       one channel to one SsiNode (loopback or TCP);
//   - net::ShardedSsiClient a coordinator that hash-routes each call to one
//                           of N shard clients and merges cross-shard views.
//
// The protocol layer (RunContext / QuerySession) programs against this
// interface only, so a single-node world and a sharded fleet are
// interchangeable without touching protocol code.
#ifndef TCELLS_NET_SSI_API_H_
#define TCELLS_NET_SSI_API_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ssi/messages.h"
#include "ssi/ssi.h"

namespace tcells::net {

/// One TDS contribution in a batched collection upload (UploadCollectionBatch).
struct CollectionUpload {
  uint64_t query_id = 0;
  uint64_t tds_id = 0;
  std::vector<ssi::EncryptedItem> items;
};

class SsiApi {
 public:
  virtual ~SsiApi() = default;

  // ---- Querybox ----
  virtual Status PostGlobal(const ssi::QueryPost& post) = 0;
  virtual Status PostPersonal(uint64_t tds_id, const ssi::QueryPost& post) = 0;
  virtual Result<std::vector<ssi::QueryPost>> FetchPosts(uint64_t tds_id) = 0;
  /// Batched FetchPosts: one result per id, in order, each failing
  /// independently (a transport failure loses that TDS's fetch only). The
  /// default is the serial loop — implementations with a wire-level batch
  /// path (SsiClient) or per-shard fan-out (ShardedSsiClient) override it,
  /// so call sites batch unconditionally and the transport decides how many
  /// frames that takes.
  virtual std::vector<Result<std::vector<ssi::QueryPost>>> FetchPostsBatch(
      const std::vector<uint64_t>& tds_ids) {
    std::vector<Result<std::vector<ssi::QueryPost>>> out;
    out.reserve(tds_ids.size());
    for (uint64_t tds_id : tds_ids) out.push_back(FetchPosts(tds_id));
    return out;
  }
  virtual Status Acknowledge(uint64_t tds_id, uint64_t query_id) = 0;
  virtual Result<uint64_t> NumAcknowledged(uint64_t query_id) = 0;

  // ---- Collection phase ----
  virtual Result<bool> SizeReached(uint64_t query_id) = 0;
  /// Uploads one TDS's contribution and acknowledges the query in one
  /// exchange. Returns whether the contribution was accepted (false when the
  /// SIZE bound closed the storage area first).
  virtual Result<bool> UploadCollection(
      uint64_t query_id, uint64_t tds_id,
      const std::vector<ssi::EncryptedItem>& items) = 0;
  /// Batched UploadCollection: one accept bit per upload, in order. The
  /// uploads are applied in vector order with exactly the serial semantics —
  /// SIZE-bound cutoffs land between the same two uploads a serial caller
  /// would see — so results are bit-identical to the one-by-one loop the
  /// default implementation runs.
  virtual std::vector<Result<bool>> UploadCollectionBatch(
      const std::vector<CollectionUpload>& uploads) {
    std::vector<Result<bool>> out;
    out.reserve(uploads.size());
    for (const CollectionUpload& u : uploads) {
      out.push_back(UploadCollection(u.query_id, u.tds_id, u.items));
    }
    return out;
  }
  virtual Result<std::vector<ssi::EncryptedItem>> TakeCollected(
      uint64_t query_id) = 0;

  // ---- Aggregation / filtering rounds ----
  virtual Status StagePartition(uint64_t query_id, uint64_t token,
                                const ssi::Partition& partition) = 0;
  virtual Result<ssi::Partition> FetchPartition(uint64_t query_id,
                                                uint64_t token) = 0;
  virtual Status UploadRoundOutput(
      uint64_t query_id, uint64_t token,
      const std::vector<ssi::EncryptedItem>& items) = 0;
  virtual Result<std::vector<ssi::EncryptedItem>> TakeRoundOutput(
      uint64_t query_id, uint64_t token) = 0;
  virtual Status ObserveAggregation(
      uint64_t query_id, const std::vector<ssi::EncryptedItem>& items) = 0;
  virtual Status ObserveFiltering(
      uint64_t query_id, const std::vector<ssi::EncryptedItem>& items) = 0;

  // ---- Key epoch distribution (dynamic key mode, docs/KEYS.md) ----
  /// Publishes the latest encoded keys::EpochBlock. Opaque bytes at this
  /// layer; later posts overwrite earlier ones. Default: unsupported, so
  /// SSI implementations predating dynamic keys keep compiling — dynamic
  /// mode simply cannot run against them.
  virtual Status PostEpochBlock(const Bytes& block) {
    (void)block;
    return Status::Unimplemented("SSI does not store epoch blocks");
  }
  /// Fetches the latest published block. `tds_id` identifies the caller for
  /// shard routing and fault keying only. NotFound before the first post.
  virtual Result<Bytes> FetchEpochBlock(uint64_t tds_id) {
    (void)tds_id;
    return Status::NotFound("no epoch block published");
  }

  // ---- Result delivery / teardown ----
  virtual Status DeliverResult(
      uint64_t query_id, const std::vector<ssi::EncryptedItem>& items) = 0;
  virtual Result<std::vector<ssi::EncryptedItem>> FetchResult(
      uint64_t query_id) = 0;
  virtual Result<ssi::AdversaryView> GetAdversaryView(uint64_t query_id) = 0;
  virtual Status Retire(uint64_t query_id) = 0;
};

}  // namespace tcells::net

#endif  // TCELLS_NET_SSI_API_H_
