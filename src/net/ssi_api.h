// SsiApi: the abstract SSI RPC surface as seen by the protocol engine.
//
// Everything a querier or TDS does against the honest-but-curious server —
// querybox traffic, collection uploads, round staging/fetching, result
// delivery, exposure introspection, teardown — is one of these calls. Two
// implementations exist:
//
//   - net::SsiClient       one channel to one SsiNode (loopback or TCP);
//   - net::ShardedSsiClient a coordinator that hash-routes each call to one
//                           of N shard clients and merges cross-shard views.
//
// The protocol layer (RunContext / QuerySession) programs against this
// interface only, so a single-node world and a sharded fleet are
// interchangeable without touching protocol code.
#ifndef TCELLS_NET_SSI_API_H_
#define TCELLS_NET_SSI_API_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ssi/messages.h"
#include "ssi/ssi.h"

namespace tcells::net {

class SsiApi {
 public:
  virtual ~SsiApi() = default;

  // ---- Querybox ----
  virtual Status PostGlobal(const ssi::QueryPost& post) = 0;
  virtual Status PostPersonal(uint64_t tds_id, const ssi::QueryPost& post) = 0;
  virtual Result<std::vector<ssi::QueryPost>> FetchPosts(uint64_t tds_id) = 0;
  virtual Status Acknowledge(uint64_t tds_id, uint64_t query_id) = 0;
  virtual Result<uint64_t> NumAcknowledged(uint64_t query_id) = 0;

  // ---- Collection phase ----
  virtual Result<bool> SizeReached(uint64_t query_id) = 0;
  /// Uploads one TDS's contribution and acknowledges the query in one
  /// exchange. Returns whether the contribution was accepted (false when the
  /// SIZE bound closed the storage area first).
  virtual Result<bool> UploadCollection(
      uint64_t query_id, uint64_t tds_id,
      const std::vector<ssi::EncryptedItem>& items) = 0;
  virtual Result<std::vector<ssi::EncryptedItem>> TakeCollected(
      uint64_t query_id) = 0;

  // ---- Aggregation / filtering rounds ----
  virtual Status StagePartition(uint64_t query_id, uint64_t token,
                                const ssi::Partition& partition) = 0;
  virtual Result<ssi::Partition> FetchPartition(uint64_t query_id,
                                                uint64_t token) = 0;
  virtual Status UploadRoundOutput(
      uint64_t query_id, uint64_t token,
      const std::vector<ssi::EncryptedItem>& items) = 0;
  virtual Result<std::vector<ssi::EncryptedItem>> TakeRoundOutput(
      uint64_t query_id, uint64_t token) = 0;
  virtual Status ObserveAggregation(
      uint64_t query_id, const std::vector<ssi::EncryptedItem>& items) = 0;
  virtual Status ObserveFiltering(
      uint64_t query_id, const std::vector<ssi::EncryptedItem>& items) = 0;

  // ---- Result delivery / teardown ----
  virtual Status DeliverResult(
      uint64_t query_id, const std::vector<ssi::EncryptedItem>& items) = 0;
  virtual Result<std::vector<ssi::EncryptedItem>> FetchResult(
      uint64_t query_id) = 0;
  virtual Result<ssi::AdversaryView> GetAdversaryView(uint64_t query_id) = 0;
  virtual Status Retire(uint64_t query_id) = 0;
};

}  // namespace tcells::net

#endif  // TCELLS_NET_SSI_API_H_
