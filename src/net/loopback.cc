#include "net/loopback.h"

#include "net/frame.h"

namespace tcells::net {

namespace {

class LoopbackChannel : public Channel {
 public:
  explicit LoopbackChannel(LoopbackTransport* transport)
      : transport_(transport) {}

  Result<Bytes> Call(const Bytes& request, const CallOptions&) override {
    return transport_->DoCall(request);
  }

 private:
  LoopbackTransport* transport_;
};

}  // namespace

Result<Bytes> LoopbackTransport::DoCall(const Bytes& request) {
  if (injected_failures_ > 0) {
    --injected_failures_;
    return injected_error_;
  }
  // Round-trip both directions through the real frame codec so the loopback
  // path carries exactly the wire bytes the TCP backend would.
  Bytes wire;
  AppendFrame(&wire, request);
  ByteReader reader(wire);
  TCELLS_ASSIGN_OR_RETURN(Bytes delivered, DecodeFrame(&reader));
  TCELLS_ASSIGN_OR_RETURN(Bytes reply, handler_(delivered));
  Bytes reply_wire;
  AppendFrame(&reply_wire, reply);
  ByteReader reply_reader(reply_wire);
  return DecodeFrame(&reply_reader);
}

Result<std::unique_ptr<Channel>> LoopbackTransport::Connect() {
  return std::unique_ptr<Channel>(new LoopbackChannel(this));
}

}  // namespace tcells::net
