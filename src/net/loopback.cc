#include "net/loopback.h"

#include "net/frame.h"

namespace tcells::net {

namespace {

class LoopbackChannel : public Channel {
 public:
  explicit LoopbackChannel(LoopbackTransport* transport)
      : transport_(transport) {}

  Result<Bytes> Call(const Bytes& request, const CallOptions&) override {
    return transport_->DoCall(request);
  }

 private:
  LoopbackTransport* transport_;
};

}  // namespace

Result<Bytes> LoopbackTransport::DoCall(const Bytes& request) {
  if (injected_failures_ > 0) {
    --injected_failures_;
    return injected_error_;
  }
  // Enforce the frame codec's length discipline both directions without
  // materializing the wire buffers: the old encode/decode round trip copied
  // every payload four times, which made loopback *slower* than TCP at 1 MB
  // frames while contributing nothing the length checks don't. The bytes a
  // peer would observe are unchanged (the payload IS the frame body), so
  // wire metrics and framing behaviour stay identical to the TCP backend.
  if (request.size() > kMaxFramePayload) {
    return Status::Corruption("frame length exceeds cap");
  }
  TCELLS_ASSIGN_OR_RETURN(Bytes reply, handler_(request));
  if (reply.size() > kMaxFramePayload) {
    return Status::Corruption("frame length exceeds cap");
  }
  return reply;
}

Result<std::unique_ptr<Channel>> LoopbackTransport::Connect() {
  return std::unique_ptr<Channel>(new LoopbackChannel(this));
}

}  // namespace tcells::net
