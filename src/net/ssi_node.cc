#include "net/ssi_node.h"

#include <utility>

#include "net/ssi_wire.h"

namespace tcells::net {

using ssi::EncryptedItem;
using ssi::Partition;
using ssi::QueryPost;

namespace {

Bytes EncodeItems(const std::vector<EncryptedItem>& items) {
  Partition p;
  p.items = items;
  return p.Encode();
}

Result<std::vector<EncryptedItem>> DecodeItems(ByteReader* reader) {
  TCELLS_ASSIGN_OR_RETURN(Bytes raw, reader->GetRaw(reader->remaining()));
  TCELLS_ASSIGN_OR_RETURN(Partition p, Partition::Decode(raw));
  return std::move(p.items);
}

Bytes EmptyBody() { return Bytes(); }

}  // namespace

size_t SsiNode::num_active_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hub_.num_active();
}

Result<Bytes> SsiNode::Handle(const Bytes& request) {
  std::lock_guard<std::mutex> lock(mu_);
  if (IsBatchFrame(request)) {
    // Many logical calls share this physical frame. Each one dispatches
    // exactly as a single-call frame would, in frame order under the one
    // mutex hold, and its reply envelope travels back tagged with the
    // call's correlation ID.
    TCELLS_ASSIGN_OR_RETURN(std::vector<BatchCall> calls,
                            DecodeBatchFrame(request));
    std::vector<BatchCall> replies;
    replies.reserve(calls.size());
    for (const BatchCall& call : calls) {
      TCELLS_ASSIGN_OR_RETURN(Bytes envelope, HandleOne(call.payload));
      replies.push_back(BatchCall{call.correlation_id, std::move(envelope)});
    }
    return EncodeBatchFrame(replies);
  }
  return HandleOne(request);
}

Result<Bytes> SsiNode::HandleOne(const Bytes& request) {
  Result<Bytes> reply = Dispatch(request);
  if (reply.ok()) return reply;
  Status status = reply.status();
  if (status.IsCorruption()) {
    // Undecodable request frame: surface to the transport, which drops the
    // connection (the stream cannot be trusted further).
    return status;
  }
  return EncodeReplyError(status);
}

Result<Bytes> SsiNode::Dispatch(const Bytes& request) {
  ByteReader reader(request);
  TCELLS_ASSIGN_OR_RETURN(uint8_t type_byte, reader.GetU8());
  switch (static_cast<MsgType>(type_byte)) {
    case MsgType::kPostGlobal: {
      TCELLS_ASSIGN_OR_RETURN(Bytes raw, reader.GetRaw(reader.remaining()));
      TCELLS_ASSIGN_OR_RETURN(QueryPost post, QueryPost::Decode(raw));
      TCELLS_RETURN_IF_ERROR(hub_.PostGlobal(std::move(post)));
      return EncodeReplyOk(EmptyBody());
    }
    case MsgType::kPostPersonal: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t tds_id, reader.GetU64());
      TCELLS_ASSIGN_OR_RETURN(Bytes raw, reader.GetRaw(reader.remaining()));
      TCELLS_ASSIGN_OR_RETURN(QueryPost post, QueryPost::Decode(raw));
      TCELLS_RETURN_IF_ERROR(hub_.PostPersonal(tds_id, std::move(post)));
      return EncodeReplyOk(EmptyBody());
    }
    case MsgType::kFetchPosts: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t tds_id, reader.GetU64());
      std::vector<const QueryPost*> posts = hub_.Fetch(tds_id);
      Bytes body;
      ByteWriter w(&body);
      w.PutU32(static_cast<uint32_t>(posts.size()));
      for (const QueryPost* post : posts) w.PutBytes(post->Encode());
      return EncodeReplyOk(body);
    }
    case MsgType::kAcknowledge: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t tds_id, reader.GetU64());
      TCELLS_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
      TCELLS_RETURN_IF_ERROR(hub_.Acknowledge(tds_id, query_id));
      return EncodeReplyOk(EmptyBody());
    }
    case MsgType::kNumAcknowledged: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
      Bytes body;
      ByteWriter w(&body);
      w.PutU64(hub_.NumAcknowledged(query_id));
      return EncodeReplyOk(body);
    }
    case MsgType::kSizeReached: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
      TCELLS_ASSIGN_OR_RETURN(ssi::Ssi * storage, hub_.StorageFor(query_id));
      Bytes body;
      ByteWriter w(&body);
      w.PutU8(storage->SizeReached() ? 1 : 0);
      return EncodeReplyOk(body);
    }
    case MsgType::kUploadCollection: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
      TCELLS_ASSIGN_OR_RETURN(uint64_t tds_id, reader.GetU64());
      TCELLS_ASSIGN_OR_RETURN(std::vector<EncryptedItem> items,
                              DecodeItems(&reader));
      TCELLS_ASSIGN_OR_RETURN(ssi::Ssi * storage, hub_.StorageFor(query_id));
      std::map<uint64_t, bool>& accepted_by = collection_accepted_[query_id];
      auto dup = accepted_by.find(tds_id);
      bool accepted;
      if (dup != accepted_by.end()) {
        // Duplicate delivery: a transport retry after the reply was lost.
        // The first delivery already stored this TDS's contribution (or
        // discarded it at the SIZE bound); replay its reply instead of
        // counting the contribution twice.
        accepted = dup->second;
      } else {
        // Atomic check-then-receive: when the SIZE bound was reached while
        // this upload was in flight, the contribution is discarded but the
        // TDS still counts as having served the query.
        accepted = !storage->SizeReached();
        if (accepted) storage->ReceiveCollectionItems(std::move(items));
        accepted_by.emplace(tds_id, accepted);
      }
      TCELLS_RETURN_IF_ERROR(hub_.Acknowledge(tds_id, query_id));
      Bytes body;
      ByteWriter w(&body);
      w.PutU8(accepted ? 1 : 0);
      return EncodeReplyOk(body);
    }
    case MsgType::kTakeCollected: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
      // Idempotent despite the destructive storage drain: a duplicate
      // delivery (transport retry after a lost reply, or a duplicated
      // frame) replays the first take's bytes instead of the now-empty
      // collection.
      auto taken = collected_taken_.find(query_id);
      if (taken != collected_taken_.end()) {
        return EncodeReplyOk(taken->second);
      }
      TCELLS_ASSIGN_OR_RETURN(ssi::Ssi * storage, hub_.StorageFor(query_id));
      Partition p;
      p.items = storage->TakeCollected();
      Bytes body = p.Encode();
      collected_taken_[query_id] = body;
      return EncodeReplyOk(body);
    }
    case MsgType::kStagePartition: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
      TCELLS_ASSIGN_OR_RETURN(uint64_t token, reader.GetU64());
      TCELLS_ASSIGN_OR_RETURN(std::vector<EncryptedItem> items,
                              DecodeItems(&reader));
      Partition p;
      p.items = std::move(items);
      staged_[query_id][token] = std::move(p);
      return EncodeReplyOk(EmptyBody());
    }
    case MsgType::kFetchPartition: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
      TCELLS_ASSIGN_OR_RETURN(uint64_t token, reader.GetU64());
      auto qit = staged_.find(query_id);
      if (qit == staged_.end() || !qit->second.count(token)) {
        return Status::NotFound("no staged partition for token");
      }
      // Left staged: a dropout re-dispatch downloads the same bytes again.
      return EncodeReplyOk(qit->second.at(token).Encode());
    }
    case MsgType::kUploadRoundOutput: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
      TCELLS_ASSIGN_OR_RETURN(uint64_t token, reader.GetU64());
      TCELLS_ASSIGN_OR_RETURN(std::vector<EncryptedItem> items,
                              DecodeItems(&reader));
      Partition p;
      p.items = std::move(items);
      outputs_[query_id][token] = std::move(p);
      return EncodeReplyOk(EmptyBody());
    }
    case MsgType::kTakeRoundOutput: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
      TCELLS_ASSIGN_OR_RETURN(uint64_t token, reader.GetU64());
      auto qit = outputs_.find(query_id);
      if (qit == outputs_.end() || !qit->second.count(token)) {
        return Status::NotFound("no round output for token");
      }
      // Left in place: the take is two-phase. A retry after a lost reply
      // re-downloads the same bytes; only the explicit kAckRoundOutput
      // (sent once the items are safely in the client's hands) erases.
      return EncodeReplyOk(qit->second.at(token).Encode());
    }
    case MsgType::kAckRoundOutput: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
      TCELLS_ASSIGN_OR_RETURN(uint64_t token, reader.GetU64());
      // Consume both ends of the exchange so the next round can reuse the
      // token without mixing stale bytes in. Idempotent: an ack retried
      // after a lost reply finds nothing and still succeeds.
      auto qit = outputs_.find(query_id);
      if (qit != outputs_.end()) qit->second.erase(token);
      auto sit = staged_.find(query_id);
      if (sit != staged_.end()) sit->second.erase(token);
      return EncodeReplyOk(EmptyBody());
    }
    case MsgType::kObserveAggregation: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
      TCELLS_ASSIGN_OR_RETURN(std::vector<EncryptedItem> items,
                              DecodeItems(&reader));
      TCELLS_ASSIGN_OR_RETURN(ssi::Ssi * storage, hub_.StorageFor(query_id));
      storage->ObserveAggregationItems(items);
      return EncodeReplyOk(EmptyBody());
    }
    case MsgType::kObserveFiltering: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
      TCELLS_ASSIGN_OR_RETURN(std::vector<EncryptedItem> items,
                              DecodeItems(&reader));
      TCELLS_ASSIGN_OR_RETURN(ssi::Ssi * storage, hub_.StorageFor(query_id));
      storage->ObserveFilteringItems(items);
      return EncodeReplyOk(EmptyBody());
    }
    case MsgType::kDeliverResult: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
      TCELLS_ASSIGN_OR_RETURN(std::vector<EncryptedItem> items,
                              DecodeItems(&reader));
      results_[query_id] = std::move(items);
      return EncodeReplyOk(EmptyBody());
    }
    case MsgType::kFetchResult: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
      auto it = results_.find(query_id);
      if (it == results_.end()) {
        return Status::NotFound("no delivered result for query");
      }
      return EncodeReplyOk(EncodeItems(it->second));
    }
    case MsgType::kAdversaryView: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
      TCELLS_ASSIGN_OR_RETURN(ssi::Ssi * storage, hub_.StorageFor(query_id));
      Bytes body;
      storage->adversary_view().EncodeTo(&body);
      return EncodeReplyOk(body);
    }
    case MsgType::kPostEpochBlock: {
      // Opaque to the SSI: the block is broadcast-encrypted key material the
      // node merely stores and serves. Later posts overwrite earlier ones —
      // the authority always publishes the full current window.
      TCELLS_ASSIGN_OR_RETURN(epoch_block_,
                              reader.GetRaw(reader.remaining()));
      return EncodeReplyOk(EmptyBody());
    }
    case MsgType::kFetchEpochBlock: {
      // The tds_id exists only to shard-route and fault-key the fetch; the
      // reply is the same latest block for every caller.
      TCELLS_ASSIGN_OR_RETURN(uint64_t tds_id, reader.GetU64());
      (void)tds_id;
      if (epoch_block_.empty()) {
        return Status::NotFound("no epoch block published");
      }
      return EncodeReplyOk(epoch_block_);
    }
    case MsgType::kRetire: {
      TCELLS_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
      // Drop every transfer remnant of the query, so lost partitions do not
      // outlive it inside the SSI.
      collection_accepted_.erase(query_id);
      collected_taken_.erase(query_id);
      staged_.erase(query_id);
      outputs_.erase(query_id);
      results_.erase(query_id);
      TCELLS_RETURN_IF_ERROR(hub_.Retire(query_id));
      return EncodeReplyOk(EmptyBody());
    }
  }
  return Status::Corruption("unknown SSI message type");
}

}  // namespace tcells::net
