// In-process loopback transport: the default backend. Every call still round
// trips through the real frame codec — encode, length-prefix, decode on the
// "server" side and back — so framing bugs and byte counts are exercised
// identically to the TCP backend, but no sockets or threads are involved and
// results are bit-identical to a direct method call.
//
// For failure-path tests the transport can inject transport-level errors
// into the next N calls, deterministically.
#ifndef TCELLS_NET_LOOPBACK_H_
#define TCELLS_NET_LOOPBACK_H_

#include <cstddef>
#include <utility>

#include "net/channel.h"

namespace tcells::net {

class LoopbackTransport : public Transport {
 public:
  /// `handler` must outlive the transport and every channel it creates.
  explicit LoopbackTransport(Handler handler) : handler_(std::move(handler)) {}

  Result<std::unique_ptr<Channel>> Connect() override;
  const char* name() const override { return "loopback"; }

  /// Test hook: the next `count` calls (across all channels of this
  /// transport) fail with `error` before reaching the handler.
  void InjectFailures(size_t count, Status error) {
    injected_failures_ = count;
    injected_error_ = std::move(error);
  }

  /// One framed request/reply exchange; channels delegate here.
  Result<Bytes> DoCall(const Bytes& request);

 private:
  Handler handler_;
  size_t injected_failures_ = 0;
  Status injected_error_;
};

}  // namespace tcells::net

#endif  // TCELLS_NET_LOOPBACK_H_
