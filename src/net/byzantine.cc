#include "net/byzantine.h"

#include <algorithm>

#include "ssi/messages.h"

namespace tcells::net {

namespace {

struct ParsedRequest {
  MsgType type = MsgType::kPostGlobal;
  uint64_t a = 0;
  uint64_t b = 0;
  /// Remainder of the request after the keys (the partition payload for
  /// stage/upload messages).
  Bytes payload;
  bool ok = false;
};

ParsedRequest Parse(const Bytes& request, size_t num_u64s) {
  ParsedRequest parsed;
  ByteReader reader(request);
  Result<uint8_t> type = reader.GetU8();
  if (!type.ok()) return parsed;
  parsed.type = static_cast<MsgType>(*type);
  if (num_u64s >= 1) {
    Result<uint64_t> a = reader.GetU64();
    if (!a.ok()) return parsed;
    parsed.a = *a;
  }
  if (num_u64s >= 2) {
    Result<uint64_t> b = reader.GetU64();
    if (!b.ok()) return parsed;
    parsed.b = *b;
  }
  Result<Bytes> rest = reader.GetRaw(reader.remaining());
  if (!rest.ok()) return parsed;
  parsed.payload = std::move(*rest);
  parsed.ok = true;
  return parsed;
}

Result<uint8_t> RequestType(const Bytes& request) {
  return ByteReader(request).GetU8();
}

}  // namespace

ByzantineProxy::ByzantineProxy(Handler honest, TamperPlan plan)
    : honest_(std::move(honest)), plan_(plan) {}

Handler ByzantineProxy::handler() {
  return [this](const Bytes& request) { return Handle(request); };
}

TamperStats ByzantineProxy::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Result<Bytes> ByzantineProxy::Handle(const Bytes& request) {
  Result<uint8_t> raw_type = RequestType(request);
  if (!raw_type.ok()) return honest_(request);
  const MsgType type = static_cast<MsgType>(*raw_type);

  // Record the payloads future lies are built from, then let the honest
  // node answer.
  if (type == MsgType::kStagePartition ||
      type == MsgType::kUploadRoundOutput) {
    ParsedRequest parsed = Parse(request, 2);
    if (parsed.ok) {
      std::lock_guard<std::mutex> lock(mu_);
      auto& store =
          type == MsgType::kStagePartition ? staged_ : uploaded_;
      store[{parsed.a, parsed.b}] = parsed.payload;
    }
  }
  if (type == MsgType::kRetire) {
    ParsedRequest parsed = Parse(request, 1);
    if (parsed.ok) {
      std::lock_guard<std::mutex> lock(mu_);
      auto drop = [&](std::map<Key, Bytes>& store) {
        store.erase(store.lower_bound({parsed.a, 0}),
                    store.upper_bound({parsed.a, ~uint64_t{0}}));
      };
      drop(staged_);
      drop(uploaded_);
      drop(first_take_reply_);
    }
  }

  TCELLS_ASSIGN_OR_RETURN(Bytes reply, honest_(request));

  // Forged errors apply regardless of what the honest reply was.
  if (plan_.forge_error_on && *plan_.forge_error_on == type) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.forged_errors += 1;
    return EncodeReplyError(Status::NotFound("byzantine SSI: no such data"));
  }

  // Every other lie rewrites an OK envelope; application errors pass
  // through untouched.
  Result<Bytes> body = DecodeReply(reply);
  if (!body.ok()) return reply;

  switch (type) {
    case MsgType::kTakeCollected: {
      if (!plan_.reverse_collected) break;
      Result<ssi::Partition> p = ssi::Partition::Decode(*body);
      if (!p.ok() || p->items.size() < 2) break;
      std::reverse(p->items.begin(), p->items.end());
      std::lock_guard<std::mutex> lock(mu_);
      stats_.reversed_collected += 1;
      return EncodeReplyOk(p->Encode());
    }
    case MsgType::kUploadCollection: {
      if (!plan_.forge_accept_byte) break;
      std::lock_guard<std::mutex> lock(mu_);
      stats_.forged_accepts += 1;
      return EncodeReplyOk(Bytes{0});
    }
    case MsgType::kSizeReached: {
      if (!plan_.forge_size_reached) break;
      if (!body->empty() && (*body)[0] != 0) break;  // already true
      std::lock_guard<std::mutex> lock(mu_);
      stats_.forged_size_reached += 1;
      return EncodeReplyOk(Bytes{1});
    }
    case MsgType::kTakeRoundOutput: {
      ParsedRequest parsed = Parse(request, 2);
      if (!parsed.ok) break;
      const Key key{parsed.a, parsed.b};
      std::lock_guard<std::mutex> lock(mu_);
      if (plan_.replay_round_output) {
        auto it = first_take_reply_.find(key);
        if (it == first_take_reply_.end()) {
          first_take_reply_[key] = *body;
        } else if (it->second != *body) {
          stats_.replayed_round_outputs += 1;
          return EncodeReplyOk(it->second);
        }
      }
      if (plan_.echo_input_as_output) {
        auto it = staged_.find(key);
        if (it != staged_.end() && it->second != *body) {
          stats_.echoed_inputs += 1;
          return EncodeReplyOk(it->second);
        }
      }
      if (plan_.swap_round_outputs) {
        auto it = uploaded_.find({parsed.a, parsed.b ^ 1});
        if (it != uploaded_.end() && it->second != *body) {
          stats_.swapped_round_outputs += 1;
          return EncodeReplyOk(it->second);
        }
      }
      break;
    }
    default:
      break;
  }
  return reply;
}

}  // namespace tcells::net
