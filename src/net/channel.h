// Channel/Transport: the pluggable message boundary between the trusted side
// (querier + TDS fleet) and the untrusted SSI. A Channel carries one framed
// request/response exchange at a time; a Transport manufactures channels
// against a serving endpoint. Two backends exist: the in-process loopback
// (loopback.h, default — bit-identical to direct calls) and a real TCP
// socket pair (tcp.h), so the same protocol engine runs against either a
// simulated or a genuinely remote SSI.
#ifndef TCELLS_NET_CHANNEL_H_
#define TCELLS_NET_CHANNEL_H_

#include <functional>
#include <memory>
#include <string_view>

#include "common/bytes.h"
#include "common/result.h"

namespace tcells::net {

/// Per-call knobs. The deadline covers the whole exchange (send + wait +
/// receive); expiry surfaces as DeadlineExceeded, which callers may retry.
struct CallOptions {
  double deadline_seconds = 5.0;
};

/// One bidirectional, ordered frame pipe to the SSI. Not thread-safe: a
/// channel carries one outstanding call at a time (SsiClient serializes).
class Channel {
 public:
  virtual ~Channel() = default;

  /// Sends `request` as one frame and returns the peer's reply frame.
  /// Unavailable on connection loss / peer close, DeadlineExceeded when
  /// `opts.deadline_seconds` elapses first. Both are retryable; any other
  /// status is not.
  virtual Result<Bytes> Call(const Bytes& request, const CallOptions& opts) = 0;
};

/// Server-side request processor: one complete request frame in, one
/// complete response frame out.
using Handler = std::function<Result<Bytes>(const Bytes&)>;

/// Channel factory bound to one serving endpoint.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual Result<std::unique_ptr<Channel>> Connect() = 0;
  virtual const char* name() const = 0;
};

enum class TransportKind { kLoopback, kTcp };

const char* TransportKindToString(TransportKind kind);
Result<TransportKind> TransportKindFromName(std::string_view name);

}  // namespace tcells::net

#endif  // TCELLS_NET_CHANNEL_H_
