#include "net/faulty.h"

#include <algorithm>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/rng.h"

namespace tcells::net {

namespace {

/// splitmix64 finalizer — the same mixer the Rng seeds with, reused to fold
/// the call key into a decision seed.
uint64_t Mix(uint64_t h, uint64_t v) {
  uint64_t z = h + 0x9e3779b97f4a7c15ULL + v;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The leading u64 fields of each request type — the message's identity from
/// the fault injector's point of view. Unknown/garbled requests key as zero.
struct CallKey {
  uint8_t type = 0;
  uint64_t a = 0;
  uint64_t b = 0;
};

size_t NumKeyFields(MsgType type) {
  switch (type) {
    case MsgType::kPostGlobal:
    case MsgType::kPostEpochBlock:
      return 0;
    case MsgType::kPostPersonal:
    case MsgType::kFetchPosts:
    case MsgType::kFetchEpochBlock:
    case MsgType::kNumAcknowledged:
    case MsgType::kSizeReached:
    case MsgType::kTakeCollected:
    case MsgType::kObserveAggregation:
    case MsgType::kObserveFiltering:
    case MsgType::kDeliverResult:
    case MsgType::kFetchResult:
    case MsgType::kAdversaryView:
    case MsgType::kRetire:
      return 1;
    case MsgType::kAcknowledge:
    case MsgType::kUploadCollection:
    case MsgType::kStagePartition:
    case MsgType::kFetchPartition:
    case MsgType::kUploadRoundOutput:
    case MsgType::kTakeRoundOutput:
    case MsgType::kAckRoundOutput:
      return 2;
  }
  return 0;
}

CallKey ExtractKey(const Bytes& request) {
  CallKey key;
  ByteReader reader(request);
  Result<uint8_t> type = reader.GetU8();
  if (!type.ok()) return key;
  key.type = *type;
  size_t fields = NumKeyFields(static_cast<MsgType>(key.type));
  if (fields >= 1) {
    Result<uint64_t> a = reader.GetU64();
    if (a.ok()) key.a = *a;
  }
  if (fields >= 2) {
    Result<uint64_t> b = reader.GetU64();
    if (b.ok()) key.b = *b;
  }
  return key;
}

const char* MsgTypeName(uint8_t type) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kPostGlobal: return "PostGlobal";
    case MsgType::kPostPersonal: return "PostPersonal";
    case MsgType::kFetchPosts: return "FetchPosts";
    case MsgType::kAcknowledge: return "Acknowledge";
    case MsgType::kNumAcknowledged: return "NumAcknowledged";
    case MsgType::kSizeReached: return "SizeReached";
    case MsgType::kUploadCollection: return "UploadCollection";
    case MsgType::kTakeCollected: return "TakeCollected";
    case MsgType::kStagePartition: return "StagePartition";
    case MsgType::kFetchPartition: return "FetchPartition";
    case MsgType::kUploadRoundOutput: return "UploadRoundOutput";
    case MsgType::kTakeRoundOutput: return "TakeRoundOutput";
    case MsgType::kObserveAggregation: return "ObserveAggregation";
    case MsgType::kObserveFiltering: return "ObserveFiltering";
    case MsgType::kDeliverResult: return "DeliverResult";
    case MsgType::kFetchResult: return "FetchResult";
    case MsgType::kAdversaryView: return "AdversaryView";
    case MsgType::kRetire: return "Retire";
    case MsgType::kAckRoundOutput: return "AckRoundOutput";
    case MsgType::kPostEpochBlock: return "PostEpochBlock";
    case MsgType::kFetchEpochBlock: return "FetchEpochBlock";
  }
  return "Unknown";
}

/// Bounds the per-key history maps; far above any campaign's key count, so
/// hitting it only degrades stale-replay/reorder coverage, never correctness.
constexpr size_t kMaxTrackedKeys = 1 << 16;

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDropRequest: return "drop_request";
    case FaultKind::kDropReply: return "drop_reply";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kBitFlip: return "bit_flip";
    case FaultKind::kStaleReplay: return "stale_replay";
    case FaultKind::kDisconnect: return "disconnect";
  }
  return "?";
}

struct FaultyTransport::State {
  FaultPlan plan;
  Clock* clock;

  std::mutex mu;
  using KeyId = std::tuple<uint8_t, uint64_t, uint64_t>;
  std::map<KeyId, uint64_t> key_attempts;
  std::map<uint8_t, uint64_t> type_counts;
  /// Last request / last transport-OK reply per key, for reorder and
  /// stale-replay faults.
  std::map<KeyId, Bytes> last_request;
  std::map<KeyId, Bytes> last_reply;
  std::vector<FaultEvent> events;
  uint64_t calls = 0;

  /// Scripted triggers first, then a seeded draw per probability in fixed
  /// order. Pure function of (seed, key, per-key/per-type counters).
  FaultKind Decide(const CallKey& key, uint64_t key_attempt,
                   uint64_t type_count) {
    for (const ScriptedFault& f : plan.script) {
      if (static_cast<uint8_t>(f.type) != key.type) continue;
      if (f.key_a && *f.key_a != key.a) continue;
      if (f.key_b && *f.key_b != key.b) continue;
      uint64_t count =
          f.scope == ScriptedFault::Scope::kPerKey ? key_attempt : type_count;
      if (count < f.nth) continue;
      if (f.repeat != 0 && count >= f.nth + f.repeat) continue;
      return f.kind;
    }
    const FaultProbabilities& p = plan.ProbsFor(static_cast<MsgType>(key.type));
    uint64_t h = Mix(Mix(Mix(Mix(plan.seed, key.type), key.a), key.b),
                     key_attempt);
    Rng rng(h);
    // One draw per kind in a fixed order, independent of which probabilities
    // are zero, so adding a kind to a plan never reshuffles the others.
    FaultKind hit = FaultKind::kNone;
    auto draw = [&](double prob, FaultKind kind) {
      bool fired = rng.NextBool(prob);
      if (fired && hit == FaultKind::kNone) hit = kind;
    };
    draw(p.drop_request, FaultKind::kDropRequest);
    draw(p.drop_reply, FaultKind::kDropReply);
    draw(p.delay, FaultKind::kDelay);
    draw(p.duplicate, FaultKind::kDuplicate);
    draw(p.reorder, FaultKind::kReorder);
    draw(p.truncate, FaultKind::kTruncate);
    draw(p.bit_flip, FaultKind::kBitFlip);
    draw(p.stale_replay, FaultKind::kStaleReplay);
    draw(p.disconnect, FaultKind::kDisconnect);
    return hit;
  }

  void Record(const CallKey& key, uint64_t key_attempt, FaultKind kind) {
    FaultEvent e;
    e.type = key.type;
    e.key_a = key.a;
    e.key_b = key.b;
    e.key_attempt = key_attempt;
    e.kind = kind;
    events.push_back(e);
  }

  void Remember(const CallKey& key, const Bytes* request, const Bytes* reply) {
    KeyId id{key.type, key.a, key.b};
    if (request != nullptr) {
      if (last_request.size() < kMaxTrackedKeys || last_request.count(id)) {
        last_request[id] = *request;
      }
    }
    if (reply != nullptr) {
      if (last_reply.size() < kMaxTrackedKeys || last_reply.count(id)) {
        last_reply[id] = *reply;
      }
    }
  }
};

namespace {

class FaultyChannel : public Channel {
 public:
  FaultyChannel(std::unique_ptr<Channel> inner,
                std::shared_ptr<FaultyTransport::State> state)
      : inner_(std::move(inner)), state_(std::move(state)) {}

  Result<Bytes> Call(const Bytes& request, const CallOptions& opts) override;

 private:
  std::unique_ptr<Channel> inner_;
  std::shared_ptr<FaultyTransport::State> state_;
  /// A disconnect fault killed this channel; the client must re-dial.
  bool dead_ = false;
};

Result<Bytes> FaultyChannel::Call(const Bytes& request,
                                  const CallOptions& opts) {
  if (dead_) {
    // Not a new fault decision: the disconnect was injected (and logged)
    // when it happened; every later call on the dead channel just fails.
    return Status::Unavailable("faulty transport: channel disconnected");
  }
  const CallKey key = ExtractKey(request);
  FaultyTransport::State& st = *state_;

  FaultKind kind;
  uint64_t key_attempt;
  Bytes stale_reply;
  Bytes prior_request;
  bool have_prior = false;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    st.calls += 1;
    key_attempt = ++st.key_attempts[{key.type, key.a, key.b}];
    uint64_t type_count = ++st.type_counts[key.type];
    kind = st.Decide(key, key_attempt, type_count);
    if (kind == FaultKind::kStaleReplay) {
      auto it = st.last_reply.find({key.type, key.a, key.b});
      if (it != st.last_reply.end()) {
        stale_reply = it->second;
      } else {
        kind = FaultKind::kNone;  // nothing recorded yet to replay
      }
    }
    if (kind == FaultKind::kReorder) {
      auto it = st.last_request.find({key.type, key.a, key.b});
      if (it != st.last_request.end()) {
        prior_request = it->second;
        have_prior = true;
      } else {
        kind = FaultKind::kNone;  // no earlier message to deliver late
      }
    }
    if (kind != FaultKind::kNone) st.Record(key, key_attempt, kind);
  }

  auto remember = [&](const Bytes* reply) {
    std::lock_guard<std::mutex> lock(st.mu);
    st.Remember(key, &request, reply);
  };

  switch (kind) {
    case FaultKind::kDropRequest:
      return Status::Unavailable("faulty transport: request dropped");
    case FaultKind::kDisconnect:
      dead_ = true;
      return Status::Unavailable("faulty transport: connection reset");
    case FaultKind::kDropReply: {
      // The SSI processes the request — its state advances — but the reply
      // is lost. This is the case server idempotency exists for.
      Result<Bytes> reply = inner_->Call(request, opts);
      if (!reply.ok()) return reply.status();
      remember(&*reply);
      return Status::Unavailable("faulty transport: reply dropped");
    }
    case FaultKind::kDelay: {
      double delay = st.plan.delay_seconds;
      Clock* clock = st.clock != nullptr ? st.clock : Clock::Real();
      clock->SleepFor(std::min(delay, opts.deadline_seconds));
      if (delay >= opts.deadline_seconds) {
        // The reply exists but arrives after the caller gave up.
        Result<Bytes> reply = inner_->Call(request, opts);
        if (reply.ok()) remember(&*reply);
        return Status::DeadlineExceeded("faulty transport: delayed past deadline");
      }
      break;  // survivable delay: fall through to the normal exchange
    }
    case FaultKind::kDuplicate: {
      // The request arrives twice (a retransmission); only the second
      // exchange's reply makes it back.
      Result<Bytes> first = inner_->Call(request, opts);
      (void)first;
      break;
    }
    case FaultKind::kReorder: {
      // A late retransmission of this key's previous message lands just
      // before the current one.
      if (have_prior) (void)inner_->Call(prior_request, opts);
      break;
    }
    case FaultKind::kStaleReplay:
      // An old reply for this key is served from the network's memory; the
      // SSI never sees the fresh request.
      return stale_reply;
    case FaultKind::kTruncate:
    case FaultKind::kBitFlip:
    case FaultKind::kNone:
      break;
  }

  Result<Bytes> reply = inner_->Call(request, opts);
  if (!reply.ok()) return reply.status();
  remember(&*reply);

  if (kind == FaultKind::kTruncate) {
    Bytes cut = *reply;
    cut.resize(std::min(st.plan.truncate_at, cut.size()));
    return cut;
  }
  if (kind == FaultKind::kBitFlip && !(*reply).empty()) {
    Bytes flipped = *reply;
    uint64_t h = Mix(Mix(Mix(st.plan.seed ^ 0xb17f11bULL, key.type), key.a),
                     key_attempt);
    size_t bit = static_cast<size_t>(h % (flipped.size() * 8));
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    return flipped;
  }
  return reply;
}

}  // namespace

FaultyTransport::FaultyTransport(Transport* inner, FaultPlan plan,
                                 Clock* clock)
    : inner_(inner),
      name_(std::string("faulty(") + inner->name() + ")"),
      state_(std::make_shared<State>()) {
  state_->plan = std::move(plan);
  state_->clock = clock;
}

FaultyTransport::~FaultyTransport() = default;

Result<std::unique_ptr<Channel>> FaultyTransport::Connect() {
  TCELLS_ASSIGN_OR_RETURN(std::unique_ptr<Channel> inner, inner_->Connect());
  return std::unique_ptr<Channel>(
      new FaultyChannel(std::move(inner), state_));
}

const char* FaultyTransport::name() const { return name_.c_str(); }

std::vector<FaultEvent> FaultyTransport::events() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->events;
}

std::vector<FaultEvent> FaultyTransport::canonical_events() const {
  std::vector<FaultEvent> sorted = events();
  std::sort(sorted.begin(), sorted.end(),
            [](const FaultEvent& x, const FaultEvent& y) {
              return std::tie(x.type, x.key_a, x.key_b, x.key_attempt,
                              x.kind) <
                     std::tie(y.type, y.key_a, y.key_b, y.key_attempt,
                              y.kind);
            });
  return sorted;
}

std::string FaultyTransport::CanonicalLog() const {
  std::ostringstream out;
  for (const FaultEvent& e : canonical_events()) {
    out << MsgTypeName(e.type) << " key=" << e.key_a << "/" << e.key_b
        << " attempt=" << e.key_attempt << " fault=" << FaultKindName(e.kind)
        << "\n";
  }
  return out.str();
}

uint64_t FaultyTransport::call_count() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->calls;
}

uint64_t FaultyTransport::injected_count() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->events.size();
}

}  // namespace tcells::net
