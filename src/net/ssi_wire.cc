#include "net/ssi_wire.h"

namespace tcells::net {

namespace {

Status StatusFromWire(uint8_t code, std::string msg) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kPermissionDenied:
      return Status::PermissionDenied(std::move(msg));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(msg));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(msg));
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(std::move(msg));
    case StatusCode::kInternal:
      return Status::Internal(std::move(msg));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(msg));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(msg));
  }
  return Status::Corruption("unknown status code in reply envelope");
}

}  // namespace

Bytes EncodeReplyOk(const Bytes& body) {
  Bytes out;
  ByteWriter w(&out);
  w.PutU8(static_cast<uint8_t>(StatusCode::kOk));
  w.PutRaw(body.data(), body.size());
  return out;
}

Bytes EncodeReplyError(const Status& status) {
  Bytes out;
  ByteWriter w(&out);
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutString(status.message());
  return out;
}

bool IsBatchFrame(const Bytes& frame) {
  return !frame.empty() && frame[0] == kBatchMagic;
}

Bytes EncodeBatchFrame(const std::vector<BatchCall>& calls) {
  Bytes out;
  size_t total = 6;
  for (const BatchCall& call : calls) total += 12 + call.payload.size();
  out.reserve(total);
  ByteWriter w(&out);
  w.PutU8(kBatchMagic);
  w.PutU8(kBatchVersion);
  w.PutU32(static_cast<uint32_t>(calls.size()));
  for (const BatchCall& call : calls) {
    w.PutU64(call.correlation_id);
    w.PutBytes(call.payload);
  }
  return out;
}

Result<std::vector<BatchCall>> DecodeBatchFrame(const Bytes& frame) {
  ByteReader reader(frame);
  TCELLS_ASSIGN_OR_RETURN(uint8_t magic, reader.GetU8());
  if (magic != kBatchMagic) {
    return Status::Corruption("not a batch frame");
  }
  TCELLS_ASSIGN_OR_RETURN(uint8_t version, reader.GetU8());
  if (version != kBatchVersion) {
    return Status::Corruption("unsupported batch envelope version");
  }
  // Each call is at least a u64 correlation id + u32 payload length; the
  // count getter rejects anything the remaining bytes cannot hold before a
  // single element is allocated.
  TCELLS_ASSIGN_OR_RETURN(uint32_t count, reader.GetCountU32(12));
  if (count == 0) return Status::Corruption("empty batch frame");
  if (count > kMaxCallsPerBatch) {
    return Status::Corruption("batch frame exceeds kMaxCallsPerBatch");
  }
  std::vector<BatchCall> calls;
  calls.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    BatchCall call;
    TCELLS_ASSIGN_OR_RETURN(call.correlation_id, reader.GetU64());
    TCELLS_ASSIGN_OR_RETURN(call.payload, reader.GetBytes());
    calls.push_back(std::move(call));
  }
  if (reader.remaining() != 0) {
    return Status::Corruption("trailing bytes after batch frame");
  }
  return calls;
}

Result<Bytes> DecodeReply(const Bytes& reply) {
  ByteReader reader(reply);
  TCELLS_ASSIGN_OR_RETURN(uint8_t code, reader.GetU8());
  if (static_cast<StatusCode>(code) == StatusCode::kOk) {
    return reader.GetRaw(reader.remaining());
  }
  TCELLS_ASSIGN_OR_RETURN(std::string msg, reader.GetString());
  Status decoded = StatusFromWire(code, std::move(msg));
  if (decoded.ok()) {
    // An error envelope must not carry the OK code twice removed.
    return Status::Corruption("error envelope with OK status code");
  }
  return decoded;
}

}  // namespace tcells::net
