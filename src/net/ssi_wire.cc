#include "net/ssi_wire.h"

namespace tcells::net {

namespace {

Status StatusFromWire(uint8_t code, std::string msg) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kPermissionDenied:
      return Status::PermissionDenied(std::move(msg));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(msg));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(msg));
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(std::move(msg));
    case StatusCode::kInternal:
      return Status::Internal(std::move(msg));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(msg));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(msg));
  }
  return Status::Corruption("unknown status code in reply envelope");
}

}  // namespace

Bytes EncodeReplyOk(const Bytes& body) {
  Bytes out;
  ByteWriter w(&out);
  w.PutU8(static_cast<uint8_t>(StatusCode::kOk));
  w.PutRaw(body.data(), body.size());
  return out;
}

Bytes EncodeReplyError(const Status& status) {
  Bytes out;
  ByteWriter w(&out);
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutString(status.message());
  return out;
}

Result<Bytes> DecodeReply(const Bytes& reply) {
  ByteReader reader(reply);
  TCELLS_ASSIGN_OR_RETURN(uint8_t code, reader.GetU8());
  if (static_cast<StatusCode>(code) == StatusCode::kOk) {
    return reader.GetRaw(reader.remaining());
  }
  TCELLS_ASSIGN_OR_RETURN(std::string msg, reader.GetString());
  Status decoded = StatusFromWire(code, std::move(msg));
  if (decoded.ok()) {
    // An error envelope must not carry the OK code twice removed.
    return Status::Corruption("error envelope with OK status code");
  }
  return decoded;
}

}  // namespace tcells::net
