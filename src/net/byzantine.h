// ByzantineProxy: a Handler decorator that models an actively malicious SSI.
// Where FaultyTransport corrupts the *transport* (lost frames, delays,
// garbled bytes), this proxy speaks the protocol correctly but lies at the
// application level — serving stale or misattributed round outputs, forging
// status/accept/size bytes, reordering collected items — exactly the
// behaviors the paper's threat model (a compromised Supporting Server
// Infrastructure) allows.
//
// Every mutation is a pure function of the request's wire keys and of
// replies/requests previously recorded under those same keys, all of which
// are ordered by the engine's happens-before structure (stage before take,
// all uploads before any take of a round) — so tampering is deterministic
// across thread counts and backends.
//
// The client side must either reject each tampering class (clean abort) or
// survive it with the degradation visible in metrics (partitions_tampered /
// partitions_lost / collection_participants): no silent wrong answers.
#ifndef TCELLS_NET_BYZANTINE_H_
#define TCELLS_NET_BYZANTINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "net/channel.h"
#include "net/ssi_wire.h"

namespace tcells::net {

/// Which lies the proxy tells. All off = transparent pass-through.
struct TamperPlan {
  /// kTakeCollected: serve the collected items in reverse order. A correct
  /// engine treats the collected set as unordered, so this must be
  /// *tolerated* (same result as the oracle).
  bool reverse_collected = false;
  /// kTakeRoundOutput: serve the first reply ever recorded for this
  /// (query, token) again — a stale round output from an earlier round. The
  /// client's digest check must flag it (partitions_tampered).
  bool replay_round_output = false;
  /// kTakeRoundOutput: serve the bytes staged for this (query, token) as if
  /// they were the TDS's output — the SSI "echoes" the input instead of the
  /// computed result. Caught by the digest check.
  bool echo_input_as_output = false;
  /// kTakeRoundOutput for token t: serve the output uploaded for token t^1
  /// (partition outputs swapped pairwise). Caught by the digest check.
  bool swap_round_outputs = false;
  /// kUploadCollection: rewrite the accept byte to 0 — every TDS is told its
  /// contribution was rejected while the SSI keeps (and later serves) it.
  bool forge_accept_byte = false;
  /// kSizeReached: always claim the SIZE bound is met, closing collection
  /// windows before anyone contributes.
  bool forge_size_reached = false;
  /// Replace OK replies of this message type with a NotFound error.
  std::optional<MsgType> forge_error_on;
};

/// How often each lie was told (only counted when the served bytes actually
/// differ from the honest reply).
struct TamperStats {
  uint64_t reversed_collected = 0;
  uint64_t replayed_round_outputs = 0;
  uint64_t echoed_inputs = 0;
  uint64_t swapped_round_outputs = 0;
  uint64_t forged_accepts = 0;
  uint64_t forged_size_reached = 0;
  uint64_t forged_errors = 0;

  uint64_t total() const {
    return reversed_collected + replayed_round_outputs + echoed_inputs +
           swapped_round_outputs + forged_accepts + forged_size_reached +
           forged_errors;
  }
};

class ByzantineProxy {
 public:
  /// Wraps `honest` (typically SsiNode::handler()). The proxy records the
  /// partition payloads that pass through it so later lies can replay them.
  ByzantineProxy(Handler honest, TamperPlan plan);

  /// The tampering handler to hand to a transport / server.
  Handler handler();

  TamperStats stats() const;

 private:
  Result<Bytes> Handle(const Bytes& request);

  Handler honest_;
  TamperPlan plan_;

  mutable std::mutex mu_;
  TamperStats stats_;
  using Key = std::pair<uint64_t, uint64_t>;  // (query_id, token)
  /// Partition payloads seen at kStagePartition / kUploadRoundOutput, and
  /// the first reply served per key at kTakeRoundOutput.
  std::map<Key, Bytes> staged_;
  std::map<Key, Bytes> uploaded_;
  std::map<Key, Bytes> first_take_reply_;
};

}  // namespace tcells::net

#endif  // TCELLS_NET_BYZANTINE_H_
