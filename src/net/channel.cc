#include "net/channel.h"

namespace tcells::net {

const char* TransportKindToString(TransportKind kind) {
  switch (kind) {
    case TransportKind::kLoopback:
      return "loopback";
    case TransportKind::kTcp:
      return "tcp";
  }
  return "unknown";
}

Result<TransportKind> TransportKindFromName(std::string_view name) {
  if (name == "loopback") return TransportKind::kLoopback;
  if (name == "tcp") return TransportKind::kTcp;
  return Status::InvalidArgument("unknown transport (expected loopback|tcp)");
}

}  // namespace tcells::net
