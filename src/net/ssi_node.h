// SsiNode: the server side of the SSI RPC surface. It owns the querybox hub
// (and through it every active query's storage + adversary view) plus the
// transient transfer state the framed protocol needs — staged partitions
// TDSs download, round outputs they upload, and delivered results the
// querier fetches. Handle() is the single entry point: one decoded request
// frame in, one reply frame out, dispatched under a mutex so the node can
// serve the TCP loop thread and in-process callers alike.
#ifndef TCELLS_NET_SSI_NODE_H_
#define TCELLS_NET_SSI_NODE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "net/channel.h"
#include "ssi/querybox.h"

namespace tcells::net {

class SsiNode {
 public:
  /// Processes one request frame — a single call or a multi-call batch
  /// envelope (ssi_wire.h); batched calls dispatch in frame order under one
  /// mutex hold and reply as one batch frame. A non-OK return means the
  /// request frame itself could not be decoded (transports drop the
  /// connection); application-level failures are encoded inside the OK
  /// reply envelope.
  Result<Bytes> Handle(const Bytes& request);

  /// Adapts Handle into the transport-facing handler type.
  Handler handler() {
    return [this](const Bytes& request) { return Handle(request); };
  }

  /// Active queries in the hub (for tests / diagnostics).
  size_t num_active_queries() const;

 private:
  /// One single-call frame under mu_: dispatch + error-envelope wrapping.
  Result<Bytes> HandleOne(const Bytes& request);
  Result<Bytes> Dispatch(const Bytes& request);

  mutable std::mutex mu_;
  ssi::QueryboxHub hub_;
  /// query_id → tds_id → accepted bit of the first collection upload. A
  /// duplicate delivery (transport retry after a lost reply) replays that
  /// bit instead of appending the contribution a second time.
  std::map<uint64_t, std::map<uint64_t, bool>> collection_accepted_;
  /// query_id → encoded body of the first kTakeCollected reply. The take
  /// drains the storage, so a duplicate delivery (transport retry after a
  /// lost reply) must replay the same bytes instead of an empty partition.
  std::map<uint64_t, Bytes> collected_taken_;
  /// query_id → token → partition staged for TDS download.
  std::map<uint64_t, std::map<uint64_t, ssi::Partition>> staged_;
  /// query_id → token → round output uploaded by the processing TDS.
  std::map<uint64_t, std::map<uint64_t, ssi::Partition>> outputs_;
  /// query_id → final result items awaiting querier download.
  std::map<uint64_t, std::vector<ssi::EncryptedItem>> results_;
  /// Latest published key-epoch block (encoded keys::EpochBlock, opaque
  /// here). Deliberately NOT per-query and NOT touched by kRetire: the key
  /// schedule outlives every query.
  Bytes epoch_block_;
};

}  // namespace tcells::net

#endif  // TCELLS_NET_SSI_NODE_H_
