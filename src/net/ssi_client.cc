#include "net/ssi_client.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "net/frame.h"
#include "net/ssi_wire.h"

namespace tcells::net {

using ssi::EncryptedItem;
using ssi::Partition;
using ssi::QueryPost;

namespace {

Bytes EncodeItems(const std::vector<EncryptedItem>& items) {
  Partition p;
  p.items = items;
  return p.Encode();
}

Result<std::vector<EncryptedItem>> ItemsFromBody(const Bytes& body) {
  TCELLS_ASSIGN_OR_RETURN(Partition p, Partition::Decode(body));
  return std::move(p.items);
}

void BeginRequest(Bytes* out, MsgType type) {
  ByteWriter w(out);
  w.PutU8(static_cast<uint8_t>(type));
}

Result<std::vector<QueryPost>> PostsFromBody(const Bytes& body) {
  ByteReader reader(body);
  // Each post encoding is at least its own 4-byte length prefix.
  TCELLS_ASSIGN_OR_RETURN(uint32_t n, reader.GetCountU32(4));
  std::vector<QueryPost> posts;
  posts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TCELLS_ASSIGN_OR_RETURN(Bytes encoded, reader.GetBytes());
    TCELLS_ASSIGN_OR_RETURN(QueryPost post, QueryPost::Decode(encoded));
    posts.push_back(std::move(post));
  }
  return posts;
}

Result<bool> AcceptedFromBody(const Bytes& body) {
  TCELLS_ASSIGN_OR_RETURN(uint8_t accepted, ByteReader(body).GetU8());
  return accepted != 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Async submission machinery

SsiClient::CallToken SsiClient::EnqueueLocked(Bytes request, bool detached) {
  CallToken token = next_token_++;
  Pending pending;
  pending.request = std::move(request);
  pending.detached = detached;
  calls_.emplace(token, std::move(pending));
  queue_.push_back(token);
  return token;
}

SsiClient::CallToken SsiClient::CallAsync(Bytes request) {
  std::lock_guard<std::mutex> lock(mu_);
  return EnqueueLocked(std::move(request), /*detached=*/false);
}

void SsiClient::CallDetached(Bytes request) {
  std::lock_guard<std::mutex> lock(mu_);
  (void)EnqueueLocked(std::move(request), /*detached=*/true);
}

Result<Bytes> SsiClient::Await(CallToken token) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = calls_.find(token);
    if (it == calls_.end()) {
      return Status::InvalidArgument("unknown or already-consumed call token");
    }
    if (it->second.done) {
      Result<Bytes> envelope = std::move(it->second.reply);
      calls_.erase(it);
      if (!envelope.ok()) return envelope.status();
      return DecodeReply(*envelope);
    }
    if (!it->second.dispatched) {
      if (inflight_frames_ < batch_.max_inflight_frames) {
        // This thread becomes the flusher: it seals the frame at the queue
        // front (which contains `token`, or a predecessor that must ship
        // first) and performs the exchange itself.
        DispatchChunk(&lock);
        continue;
      }
      // Every in-flight slot is busy; wait for one to free up.
      cv_.wait(lock);
      continue;
    }
    // Another thread's exchange carries this call; wait for its completion.
    cv_.wait(lock);
  }
}

void SsiClient::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!queue_.empty()) {
    if (inflight_frames_ < batch_.max_inflight_frames) {
      DispatchChunk(&lock);
    } else {
      cv_.wait(lock);
    }
  }
  while (inflight_frames_ > 0) cv_.wait(lock);
}

void SsiClient::DispatchChunk(std::unique_lock<std::mutex>* lock) {
  // Seal from the queue front, preserving submission order, until the
  // calls-per-frame or bytes-per-frame cap (an oversized call still ships
  // alone rather than stalling forever).
  const size_t max_calls = std::max<size_t>(1, batch_.max_calls_per_frame);
  std::vector<CallToken> chunk;
  std::vector<Bytes> requests;
  size_t bytes = 0;
  while (!queue_.empty() && chunk.size() < max_calls) {
    CallToken token = queue_.front();
    Pending& pending = calls_.at(token);
    if (!chunk.empty() &&
        bytes + pending.request.size() > batch_.max_bytes_per_frame) {
      break;
    }
    bytes += pending.request.size();
    pending.dispatched = true;
    chunk.push_back(token);
    requests.push_back(std::move(pending.request));
    queue_.pop_front();
  }
  if (chunk.empty()) return;
  inflight_frames_ += 1;
  inflight_calls_ += chunk.size();
  if (metrics_ != nullptr) {
    metrics_
        ->histogram("net.inflight_calls",
                    obs::Histogram::ExponentialBounds(1, 2, 12))
        .Record(static_cast<double>(inflight_calls_));
  }
  // Grab an idle channel (if any) to reuse across exchanges.
  std::unique_ptr<Channel> channel;
  if (!channels_.empty()) {
    channel = std::move(channels_.back());
    channels_.pop_back();
  }
  lock->unlock();
  std::vector<Result<Bytes>> replies = ExchangeFrame(requests, &channel);
  lock->lock();
  if (channel != nullptr && channels_.size() < batch_.max_inflight_frames) {
    channels_.push_back(std::move(channel));
  }
  inflight_frames_ -= 1;
  inflight_calls_ -= chunk.size();
  for (size_t i = 0; i < chunk.size(); ++i) {
    auto it = calls_.find(chunk[i]);
    if (it == calls_.end()) continue;
    if (it->second.detached) {
      calls_.erase(it);  // reply discarded by design
      continue;
    }
    it->second.done = true;
    it->second.reply = std::move(replies[i]);
  }
  cv_.notify_all();
}

std::vector<Result<Bytes>> SsiClient::ExchangeFrame(
    const std::vector<Bytes>& requests, std::unique_ptr<Channel>* channel) {
  const size_t n = requests.size();
  // Legacy single-call framing when batching is off: the request bytes ARE
  // the frame, byte-identical to the pre-batching client.
  const bool batch_frame = batching_enabled();

  CallOptions opts;
  opts.deadline_seconds = policy_.deadline_seconds;
  double backoff = policy_.backoff_seconds;
  Status last = Status::Unavailable("no attempt made");
  size_t max_attempts = std::max<size_t>(1, policy_.max_attempts);
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      if (backoff > 0) {
        Clock* clock = policy_.clock != nullptr ? policy_.clock : Clock::Real();
        clock->SleepFor(backoff);
      }
      backoff = std::min(backoff * 2, policy_.backoff_cap_seconds);
      if (metrics_ != nullptr) metrics_->counter("net.retries").Increment();
    }
    if (*channel == nullptr) {
      Result<std::unique_ptr<Channel>> dialed = transport_->Connect();
      if (!dialed.ok()) {
        last = dialed.status();
        continue;
      }
      *channel = std::move(dialed).ValueOrDie();
    }

    // Retries re-correlate: every attempt carries fresh IDs, so a stale
    // reply to an abandoned attempt can never be mistaken for this one's.
    Bytes wire;
    uint64_t first_cid = 0;
    if (batch_frame) {
      first_cid = next_correlation_.fetch_add(n, std::memory_order_relaxed);
      std::vector<BatchCall> calls;
      calls.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        calls.push_back(BatchCall{first_cid + i, requests[i]});
      }
      wire = EncodeBatchFrame(calls);
    } else {
      wire = requests[0];
    }

    if (metrics_ != nullptr) {
      metrics_->counter("net.frames_sent").Increment();
      metrics_->counter("net.calls_sent").Add(n);
      metrics_->counter("net.bytes_sent").Add(FrameWireSize(wire.size()));
      metrics_
          ->histogram("net.frame_bytes", obs::Histogram::DefaultSizeBounds())
          .Record(static_cast<double>(wire.size()));
      metrics_
          ->histogram("net.calls_per_frame",
                      obs::Histogram::ExponentialBounds(1, 2, 12))
          .Record(static_cast<double>(n));
    }
    Result<Bytes> reply = (*channel)->Call(wire, opts);
    if (reply.ok() && metrics_ != nullptr) {
      metrics_->counter("net.frames_received").Increment();
      metrics_->counter("net.bytes_received")
          .Add(FrameWireSize((*reply).size()));
    }
    if (reply.ok() && !batch_frame) {
      return {std::move(reply)};
    }
    if (reply.ok()) {
      Result<std::vector<BatchCall>> decoded = DecodeBatchFrame(*reply);
      if (!decoded.ok()) {
        // A reply that is not a well-formed batch frame cannot be matched to
        // anything — fatal for every call in the frame, like a garbled
        // single-call envelope.
        Status error = decoded.status();
        if (!error.IsCorruption()) error = Status::Corruption(error.message());
        return std::vector<Result<Bytes>>(n, error);
      }
      // Match by correlation ID, first reply wins: duplicates and IDs from
      // other attempts (stale replays) are dropped.
      std::vector<Result<Bytes>> out(
          n, Status::Corruption("batched call received no reply"));
      std::vector<bool> filled(n, false);
      size_t matched = 0;
      for (BatchCall& call : *decoded) {
        if (call.correlation_id < first_cid ||
            call.correlation_id >= first_cid + n) {
          if (metrics_ != nullptr) {
            metrics_->counter("net.stale_replies_dropped").Increment();
          }
          continue;
        }
        size_t idx = static_cast<size_t>(call.correlation_id - first_cid);
        if (filled[idx]) {
          if (metrics_ != nullptr) {
            metrics_->counter("net.stale_replies_dropped").Increment();
          }
          continue;
        }
        filled[idx] = true;
        matched += 1;
        out[idx] = std::move(call.payload);
      }
      if (matched == 0) {
        // Not one reply correlates with this attempt: the whole frame is a
        // stale replay (or the peer answered someone else). The exchange is
        // retryable — the server may or may not have processed the requests,
        // exactly the ambiguity the idempotent RPC semantics absorb.
        last = Status::Unavailable("batch reply carried no matching IDs");
        channel->reset();
        continue;
      }
      return out;
    }
    last = reply.status();
    if (last.IsDeadlineExceeded() && metrics_ != nullptr) {
      metrics_->counter("net.deadline_hits").Increment();
    }
    if (last.IsUnavailable() || last.IsDeadlineExceeded()) {
      // The connection is suspect; re-dial on the next attempt. A deadline
      // expiry in particular abandons a call whose reply may still be in
      // flight — reusing the channel would let the next exchange consume
      // that stale reply and silently decode another call's envelope.
      channel->reset();
    } else {
      return std::vector<Result<Bytes>>(n, last);  // Not retryable.
    }
  }
  return std::vector<Result<Bytes>>(n, last);
}

Result<Bytes> SsiClient::Call(Bytes request) {
  return Await(CallAsync(std::move(request)));
}

std::vector<Result<Bytes>> SsiClient::ExchangeOrdered(
    std::vector<Bytes> requests) {
  std::vector<Result<Bytes>> out;
  out.reserve(requests.size());
  // With batching off every request is its own bare single-call frame, so the
  // chunk size is pinned to 1 and this loop is byte-identical to the legacy
  // serial Call() sequence.
  const size_t max_calls =
      batching_enabled() ? std::max<size_t>(1, batch_.max_calls_per_frame) : 1;
  size_t i = 0;
  while (i < requests.size()) {
    size_t j = i + 1;
    size_t bytes = requests[i].size();
    while (j < requests.size() && j - i < max_calls &&
           bytes + requests[j].size() <= batch_.max_bytes_per_frame) {
      bytes += requests[j].size();
      ++j;
    }
    std::vector<Bytes> chunk(std::make_move_iterator(requests.begin() + i),
                             std::make_move_iterator(requests.begin() + j));
    std::unique_ptr<Channel> channel;
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_frames_ += 1;
      inflight_calls_ += chunk.size();
      if (metrics_ != nullptr) {
        metrics_
            ->histogram("net.inflight_calls",
                        obs::Histogram::ExponentialBounds(1, 2, 12))
            .Record(static_cast<double>(inflight_calls_));
      }
      if (!channels_.empty()) {
        channel = std::move(channels_.back());
        channels_.pop_back();
      }
    }
    std::vector<Result<Bytes>> replies = ExchangeFrame(chunk, &channel);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (channel != nullptr && channels_.size() < batch_.max_inflight_frames) {
        channels_.push_back(std::move(channel));
      }
      inflight_frames_ -= 1;
      inflight_calls_ -= chunk.size();
    }
    cv_.notify_all();
    for (Result<Bytes>& envelope : replies) {
      if (!envelope.ok()) {
        out.push_back(envelope.status());
      } else {
        out.push_back(DecodeReply(*envelope));
      }
    }
    i = j;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Typed surface

Status SsiClient::PostGlobal(const QueryPost& post) {
  Bytes req;
  BeginRequest(&req, MsgType::kPostGlobal);
  Bytes encoded = post.Encode();
  ByteWriter(&req).PutRaw(encoded.data(), encoded.size());
  return Call(std::move(req)).status();
}

Status SsiClient::PostPersonal(uint64_t tds_id, const QueryPost& post) {
  Bytes req;
  BeginRequest(&req, MsgType::kPostPersonal);
  ByteWriter w(&req);
  w.PutU64(tds_id);
  Bytes encoded = post.Encode();
  w.PutRaw(encoded.data(), encoded.size());
  return Call(std::move(req)).status();
}

Result<std::vector<QueryPost>> SsiClient::FetchPosts(uint64_t tds_id) {
  Bytes req;
  BeginRequest(&req, MsgType::kFetchPosts);
  ByteWriter(&req).PutU64(tds_id);
  TCELLS_ASSIGN_OR_RETURN(Bytes body, Call(std::move(req)));
  return PostsFromBody(body);
}

std::vector<Result<std::vector<QueryPost>>> SsiClient::FetchPostsBatch(
    const std::vector<uint64_t>& tds_ids) {
  std::vector<Bytes> requests;
  requests.reserve(tds_ids.size());
  for (uint64_t tds_id : tds_ids) {
    Bytes req;
    BeginRequest(&req, MsgType::kFetchPosts);
    ByteWriter(&req).PutU64(tds_id);
    requests.push_back(std::move(req));
  }
  std::vector<Result<Bytes>> bodies = ExchangeOrdered(std::move(requests));
  std::vector<Result<std::vector<QueryPost>>> out;
  out.reserve(bodies.size());
  for (Result<Bytes>& body : bodies) {
    if (!body.ok()) {
      out.push_back(body.status());
      continue;
    }
    out.push_back(PostsFromBody(*body));
  }
  return out;
}

Status SsiClient::PostEpochBlock(const Bytes& block) {
  Bytes req;
  BeginRequest(&req, MsgType::kPostEpochBlock);
  ByteWriter(&req).PutRaw(block.data(), block.size());
  return Call(std::move(req)).status();
}

Result<Bytes> SsiClient::FetchEpochBlock(uint64_t tds_id) {
  Bytes req;
  BeginRequest(&req, MsgType::kFetchEpochBlock);
  ByteWriter(&req).PutU64(tds_id);
  return Call(std::move(req));
}

Status SsiClient::Acknowledge(uint64_t tds_id, uint64_t query_id) {
  Bytes req;
  BeginRequest(&req, MsgType::kAcknowledge);
  ByteWriter w(&req);
  w.PutU64(tds_id);
  w.PutU64(query_id);
  return Call(std::move(req)).status();
}

Result<uint64_t> SsiClient::NumAcknowledged(uint64_t query_id) {
  Bytes req;
  BeginRequest(&req, MsgType::kNumAcknowledged);
  ByteWriter(&req).PutU64(query_id);
  TCELLS_ASSIGN_OR_RETURN(Bytes body, Call(std::move(req)));
  return ByteReader(body).GetU64();
}

Result<bool> SsiClient::SizeReached(uint64_t query_id) {
  Bytes req;
  BeginRequest(&req, MsgType::kSizeReached);
  ByteWriter(&req).PutU64(query_id);
  TCELLS_ASSIGN_OR_RETURN(Bytes body, Call(std::move(req)));
  TCELLS_ASSIGN_OR_RETURN(uint8_t flag, ByteReader(body).GetU8());
  return flag != 0;
}

namespace {

Bytes EncodeUploadCollection(uint64_t query_id, uint64_t tds_id,
                             const std::vector<EncryptedItem>& items) {
  Bytes req;
  BeginRequest(&req, MsgType::kUploadCollection);
  ByteWriter w(&req);
  w.PutU64(query_id);
  w.PutU64(tds_id);
  Bytes encoded = EncodeItems(items);
  w.PutRaw(encoded.data(), encoded.size());
  return req;
}

}  // namespace

Result<bool> SsiClient::UploadCollection(
    uint64_t query_id, uint64_t tds_id,
    const std::vector<EncryptedItem>& items) {
  TCELLS_ASSIGN_OR_RETURN(
      Bytes body, Call(EncodeUploadCollection(query_id, tds_id, items)));
  return AcceptedFromBody(body);
}

std::vector<Result<bool>> SsiClient::UploadCollectionBatch(
    const std::vector<CollectionUpload>& uploads) {
  // Collection uploads fix the hub's storage order, which downstream
  // partitioning consumes, so arrival order must equal submission order.
  // ExchangeOrdered ships the uploads frame by frame from this thread (the
  // node applies one frame's calls in order under one mutex hold), so accept
  // bits and SIZE-bound cutoffs land exactly where the serial loop would put
  // them — even when other queries share this client.
  std::vector<Bytes> requests;
  requests.reserve(uploads.size());
  for (const CollectionUpload& u : uploads) {
    requests.push_back(EncodeUploadCollection(u.query_id, u.tds_id, u.items));
  }
  std::vector<Result<Bytes>> bodies = ExchangeOrdered(std::move(requests));
  std::vector<Result<bool>> out;
  out.reserve(bodies.size());
  for (Result<Bytes>& body : bodies) {
    if (!body.ok()) {
      out.push_back(body.status());
      continue;
    }
    out.push_back(AcceptedFromBody(*body));
  }
  return out;
}

Result<std::vector<EncryptedItem>> SsiClient::TakeCollected(
    uint64_t query_id) {
  Bytes req;
  BeginRequest(&req, MsgType::kTakeCollected);
  ByteWriter(&req).PutU64(query_id);
  TCELLS_ASSIGN_OR_RETURN(Bytes body, Call(std::move(req)));
  return ItemsFromBody(body);
}

Status SsiClient::StagePartition(uint64_t query_id, uint64_t token,
                                 const Partition& partition) {
  Bytes req;
  BeginRequest(&req, MsgType::kStagePartition);
  ByteWriter w(&req);
  w.PutU64(query_id);
  w.PutU64(token);
  Bytes encoded = partition.Encode();
  w.PutRaw(encoded.data(), encoded.size());
  return Call(std::move(req)).status();
}

Result<Partition> SsiClient::FetchPartition(uint64_t query_id,
                                            uint64_t token) {
  Bytes req;
  BeginRequest(&req, MsgType::kFetchPartition);
  ByteWriter w(&req);
  w.PutU64(query_id);
  w.PutU64(token);
  TCELLS_ASSIGN_OR_RETURN(Bytes body, Call(std::move(req)));
  return Partition::Decode(body);
}

Status SsiClient::UploadRoundOutput(uint64_t query_id, uint64_t token,
                                    const std::vector<EncryptedItem>& items) {
  Bytes req;
  BeginRequest(&req, MsgType::kUploadRoundOutput);
  ByteWriter w(&req);
  w.PutU64(query_id);
  w.PutU64(token);
  Bytes encoded = EncodeItems(items);
  w.PutRaw(encoded.data(), encoded.size());
  return Call(std::move(req)).status();
}

Result<std::vector<EncryptedItem>> SsiClient::TakeRoundOutput(
    uint64_t query_id, uint64_t token) {
  Bytes req;
  BeginRequest(&req, MsgType::kTakeRoundOutput);
  ByteWriter w(&req);
  w.PutU64(query_id);
  w.PutU64(token);
  TCELLS_ASSIGN_OR_RETURN(Bytes body, Call(std::move(req)));
  TCELLS_ASSIGN_OR_RETURN(std::vector<EncryptedItem> items,
                          ItemsFromBody(body));
  // Phase 2: the items are safely in hand, so erase the server-side copy.
  // Best-effort — an unacked output is overwritten by the next round's
  // upload for the same token, or dropped at Retire.
  Bytes ack;
  BeginRequest(&ack, MsgType::kAckRoundOutput);
  ByteWriter aw(&ack);
  aw.PutU64(query_id);
  aw.PutU64(token);
  if (batching_enabled()) {
    // Piggyback the ack on the next frame out instead of paying a round
    // trip; the reply is discarded on arrival.
    CallDetached(std::move(ack));
  } else {
    (void)Call(std::move(ack));
  }
  return items;
}

Status SsiClient::ObserveAggregation(
    uint64_t query_id, const std::vector<EncryptedItem>& items) {
  Bytes req;
  BeginRequest(&req, MsgType::kObserveAggregation);
  ByteWriter w(&req);
  w.PutU64(query_id);
  Bytes encoded = EncodeItems(items);
  w.PutRaw(encoded.data(), encoded.size());
  return Call(std::move(req)).status();
}

Status SsiClient::ObserveFiltering(uint64_t query_id,
                                   const std::vector<EncryptedItem>& items) {
  Bytes req;
  BeginRequest(&req, MsgType::kObserveFiltering);
  ByteWriter w(&req);
  w.PutU64(query_id);
  Bytes encoded = EncodeItems(items);
  w.PutRaw(encoded.data(), encoded.size());
  return Call(std::move(req)).status();
}

Status SsiClient::DeliverResult(uint64_t query_id,
                                const std::vector<EncryptedItem>& items) {
  Bytes req;
  BeginRequest(&req, MsgType::kDeliverResult);
  ByteWriter w(&req);
  w.PutU64(query_id);
  Bytes encoded = EncodeItems(items);
  w.PutRaw(encoded.data(), encoded.size());
  return Call(std::move(req)).status();
}

Result<std::vector<EncryptedItem>> SsiClient::FetchResult(uint64_t query_id) {
  Bytes req;
  BeginRequest(&req, MsgType::kFetchResult);
  ByteWriter(&req).PutU64(query_id);
  TCELLS_ASSIGN_OR_RETURN(Bytes body, Call(std::move(req)));
  return ItemsFromBody(body);
}

Result<ssi::AdversaryView> SsiClient::GetAdversaryView(uint64_t query_id) {
  Bytes req;
  BeginRequest(&req, MsgType::kAdversaryView);
  ByteWriter(&req).PutU64(query_id);
  TCELLS_ASSIGN_OR_RETURN(Bytes body, Call(std::move(req)));
  return ssi::AdversaryView::Decode(body);
}

Status SsiClient::Retire(uint64_t query_id) {
  Bytes req;
  BeginRequest(&req, MsgType::kRetire);
  ByteWriter(&req).PutU64(query_id);
  return Call(std::move(req)).status();
}

}  // namespace tcells::net
