#include "net/ssi_client.h"

#include <algorithm>
#include <utility>

#include "net/frame.h"
#include "net/ssi_wire.h"

namespace tcells::net {

using ssi::EncryptedItem;
using ssi::Partition;
using ssi::QueryPost;

namespace {

Bytes EncodeItems(const std::vector<EncryptedItem>& items) {
  Partition p;
  p.items = items;
  return p.Encode();
}

Result<std::vector<EncryptedItem>> ItemsFromBody(const Bytes& body) {
  TCELLS_ASSIGN_OR_RETURN(Partition p, Partition::Decode(body));
  return std::move(p.items);
}

void BeginRequest(Bytes* out, MsgType type) {
  ByteWriter w(out);
  w.PutU8(static_cast<uint8_t>(type));
}

}  // namespace

Result<Bytes> SsiClient::Call(const Bytes& request) {
  std::unique_lock<std::mutex> lock(mu_);
  CallOptions opts;
  opts.deadline_seconds = policy_.deadline_seconds;
  double backoff = policy_.backoff_seconds;
  Status last = Status::Unavailable("no attempt made");
  size_t max_attempts = std::max<size_t>(1, policy_.max_attempts);
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      if (backoff > 0) {
        // Sleep unlocked: one failing exchange must not stall every other
        // thread sharing this client through the whole backoff schedule.
        Clock* clock = policy_.clock != nullptr ? policy_.clock : Clock::Real();
        lock.unlock();
        clock->SleepFor(backoff);
        lock.lock();
      }
      backoff = std::min(backoff * 2, policy_.backoff_cap_seconds);
      if (metrics_ != nullptr) metrics_->counter("net.retries").Increment();
    }
    if (channel_ == nullptr) {
      Result<std::unique_ptr<Channel>> dialed = transport_->Connect();
      if (!dialed.ok()) {
        last = dialed.status();
        continue;
      }
      channel_ = std::move(dialed).ValueOrDie();
    }
    if (metrics_ != nullptr) {
      metrics_->counter("net.frames_sent").Increment();
      metrics_->counter("net.bytes_sent").Add(FrameWireSize(request.size()));
      metrics_
          ->histogram("net.frame_bytes", obs::Histogram::DefaultSizeBounds())
          .Record(static_cast<double>(request.size()));
    }
    Result<Bytes> reply = channel_->Call(request, opts);
    if (reply.ok()) {
      if (metrics_ != nullptr) {
        metrics_->counter("net.frames_received").Increment();
        metrics_->counter("net.bytes_received")
            .Add(FrameWireSize((*reply).size()));
      }
      return DecodeReply(*reply);
    }
    last = reply.status();
    if (last.IsDeadlineExceeded() && metrics_ != nullptr) {
      metrics_->counter("net.deadline_hits").Increment();
    }
    if (last.IsUnavailable() || last.IsDeadlineExceeded()) {
      // The connection is suspect; re-dial on the next attempt. A deadline
      // expiry in particular abandons a call whose reply may still be in
      // flight — reusing the channel would let the next exchange consume
      // that stale reply and silently decode another call's envelope.
      channel_.reset();
    } else {
      return last;  // Not a transport failure — do not retry.
    }
  }
  return last;
}

Status SsiClient::PostGlobal(const QueryPost& post) {
  Bytes req;
  BeginRequest(&req, MsgType::kPostGlobal);
  Bytes encoded = post.Encode();
  ByteWriter(&req).PutRaw(encoded.data(), encoded.size());
  return Call(req).status();
}

Status SsiClient::PostPersonal(uint64_t tds_id, const QueryPost& post) {
  Bytes req;
  BeginRequest(&req, MsgType::kPostPersonal);
  ByteWriter w(&req);
  w.PutU64(tds_id);
  Bytes encoded = post.Encode();
  w.PutRaw(encoded.data(), encoded.size());
  return Call(req).status();
}

Result<std::vector<QueryPost>> SsiClient::FetchPosts(uint64_t tds_id) {
  Bytes req;
  BeginRequest(&req, MsgType::kFetchPosts);
  ByteWriter(&req).PutU64(tds_id);
  TCELLS_ASSIGN_OR_RETURN(Bytes body, Call(req));
  ByteReader reader(body);
  // Each post encoding is at least its own 4-byte length prefix.
  TCELLS_ASSIGN_OR_RETURN(uint32_t n, reader.GetCountU32(4));
  std::vector<QueryPost> posts;
  posts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TCELLS_ASSIGN_OR_RETURN(Bytes encoded, reader.GetBytes());
    TCELLS_ASSIGN_OR_RETURN(QueryPost post, QueryPost::Decode(encoded));
    posts.push_back(std::move(post));
  }
  return posts;
}

Status SsiClient::Acknowledge(uint64_t tds_id, uint64_t query_id) {
  Bytes req;
  BeginRequest(&req, MsgType::kAcknowledge);
  ByteWriter w(&req);
  w.PutU64(tds_id);
  w.PutU64(query_id);
  return Call(req).status();
}

Result<uint64_t> SsiClient::NumAcknowledged(uint64_t query_id) {
  Bytes req;
  BeginRequest(&req, MsgType::kNumAcknowledged);
  ByteWriter(&req).PutU64(query_id);
  TCELLS_ASSIGN_OR_RETURN(Bytes body, Call(req));
  return ByteReader(body).GetU64();
}

Result<bool> SsiClient::SizeReached(uint64_t query_id) {
  Bytes req;
  BeginRequest(&req, MsgType::kSizeReached);
  ByteWriter(&req).PutU64(query_id);
  TCELLS_ASSIGN_OR_RETURN(Bytes body, Call(req));
  TCELLS_ASSIGN_OR_RETURN(uint8_t flag, ByteReader(body).GetU8());
  return flag != 0;
}

Result<bool> SsiClient::UploadCollection(
    uint64_t query_id, uint64_t tds_id,
    const std::vector<EncryptedItem>& items) {
  Bytes req;
  BeginRequest(&req, MsgType::kUploadCollection);
  ByteWriter w(&req);
  w.PutU64(query_id);
  w.PutU64(tds_id);
  Bytes encoded = EncodeItems(items);
  w.PutRaw(encoded.data(), encoded.size());
  TCELLS_ASSIGN_OR_RETURN(Bytes body, Call(req));
  TCELLS_ASSIGN_OR_RETURN(uint8_t accepted, ByteReader(body).GetU8());
  return accepted != 0;
}

Result<std::vector<EncryptedItem>> SsiClient::TakeCollected(
    uint64_t query_id) {
  Bytes req;
  BeginRequest(&req, MsgType::kTakeCollected);
  ByteWriter(&req).PutU64(query_id);
  TCELLS_ASSIGN_OR_RETURN(Bytes body, Call(req));
  return ItemsFromBody(body);
}

Status SsiClient::StagePartition(uint64_t query_id, uint64_t token,
                                 const Partition& partition) {
  Bytes req;
  BeginRequest(&req, MsgType::kStagePartition);
  ByteWriter w(&req);
  w.PutU64(query_id);
  w.PutU64(token);
  Bytes encoded = partition.Encode();
  w.PutRaw(encoded.data(), encoded.size());
  return Call(req).status();
}

Result<Partition> SsiClient::FetchPartition(uint64_t query_id,
                                            uint64_t token) {
  Bytes req;
  BeginRequest(&req, MsgType::kFetchPartition);
  ByteWriter w(&req);
  w.PutU64(query_id);
  w.PutU64(token);
  TCELLS_ASSIGN_OR_RETURN(Bytes body, Call(req));
  return Partition::Decode(body);
}

Status SsiClient::UploadRoundOutput(uint64_t query_id, uint64_t token,
                                    const std::vector<EncryptedItem>& items) {
  Bytes req;
  BeginRequest(&req, MsgType::kUploadRoundOutput);
  ByteWriter w(&req);
  w.PutU64(query_id);
  w.PutU64(token);
  Bytes encoded = EncodeItems(items);
  w.PutRaw(encoded.data(), encoded.size());
  return Call(req).status();
}

Result<std::vector<EncryptedItem>> SsiClient::TakeRoundOutput(
    uint64_t query_id, uint64_t token) {
  Bytes req;
  BeginRequest(&req, MsgType::kTakeRoundOutput);
  ByteWriter w(&req);
  w.PutU64(query_id);
  w.PutU64(token);
  TCELLS_ASSIGN_OR_RETURN(Bytes body, Call(req));
  TCELLS_ASSIGN_OR_RETURN(std::vector<EncryptedItem> items,
                          ItemsFromBody(body));
  // Phase 2: the items are safely in hand, so erase the server-side copy.
  // Best-effort — an unacked output is overwritten by the next round's
  // upload for the same token, or dropped at Retire.
  Bytes ack;
  BeginRequest(&ack, MsgType::kAckRoundOutput);
  ByteWriter aw(&ack);
  aw.PutU64(query_id);
  aw.PutU64(token);
  (void)Call(ack);
  return items;
}

Status SsiClient::ObserveAggregation(
    uint64_t query_id, const std::vector<EncryptedItem>& items) {
  Bytes req;
  BeginRequest(&req, MsgType::kObserveAggregation);
  ByteWriter w(&req);
  w.PutU64(query_id);
  Bytes encoded = EncodeItems(items);
  w.PutRaw(encoded.data(), encoded.size());
  return Call(req).status();
}

Status SsiClient::ObserveFiltering(uint64_t query_id,
                                   const std::vector<EncryptedItem>& items) {
  Bytes req;
  BeginRequest(&req, MsgType::kObserveFiltering);
  ByteWriter w(&req);
  w.PutU64(query_id);
  Bytes encoded = EncodeItems(items);
  w.PutRaw(encoded.data(), encoded.size());
  return Call(req).status();
}

Status SsiClient::DeliverResult(uint64_t query_id,
                                const std::vector<EncryptedItem>& items) {
  Bytes req;
  BeginRequest(&req, MsgType::kDeliverResult);
  ByteWriter w(&req);
  w.PutU64(query_id);
  Bytes encoded = EncodeItems(items);
  w.PutRaw(encoded.data(), encoded.size());
  return Call(req).status();
}

Result<std::vector<EncryptedItem>> SsiClient::FetchResult(uint64_t query_id) {
  Bytes req;
  BeginRequest(&req, MsgType::kFetchResult);
  ByteWriter(&req).PutU64(query_id);
  TCELLS_ASSIGN_OR_RETURN(Bytes body, Call(req));
  return ItemsFromBody(body);
}

Result<ssi::AdversaryView> SsiClient::GetAdversaryView(uint64_t query_id) {
  Bytes req;
  BeginRequest(&req, MsgType::kAdversaryView);
  ByteWriter(&req).PutU64(query_id);
  TCELLS_ASSIGN_OR_RETURN(Bytes body, Call(req));
  return ssi::AdversaryView::Decode(body);
}

Status SsiClient::Retire(uint64_t query_id) {
  Bytes req;
  BeginRequest(&req, MsgType::kRetire);
  ByteWriter(&req).PutU64(query_id);
  return Call(req).status();
}

}  // namespace tcells::net
