// FaultyTransport / FaultyChannel: a deterministic fault-injection decorator
// around any Transport backend (loopback or TCP). Faults — dropped requests
// and replies, delays, duplicate deliveries, reorderings, truncations, bit
// flips, stale replays and mid-query disconnects — are driven by a FaultPlan
// combining per-message-type probabilities with scripted triggers ("drop the
// 3rd kTakeRoundOutput").
//
// Determinism contract: every fault decision is a pure function of
// (plan seed, message type, the message's leading wire keys, the per-key
// attempt index) — never of arrival order, thread id or wall clock. The
// engine serializes all calls for one (type, query, token) key, so the same
// seed yields the same fault sequence for any thread count and on either
// backend. The event log preserves injection order (schedule-dependent); use
// canonical_events()/CanonicalLog() for cross-run comparison.
#ifndef TCELLS_NET_FAULTY_H_
#define TCELLS_NET_FAULTY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "net/channel.h"
#include "net/ssi_wire.h"

namespace tcells::net {

enum class FaultKind : uint8_t {
  kNone = 0,
  kDropRequest,   ///< request never reaches the SSI → Unavailable
  kDropReply,     ///< SSI processes the request, reply lost → Unavailable
  kDelay,         ///< injected latency; ≥ deadline → DeadlineExceeded
  kDuplicate,     ///< request delivered twice (first reply lost)
  kReorder,       ///< the key's previous request is re-delivered first
  kTruncate,      ///< reply cut to FaultPlan::truncate_at bytes
  kBitFlip,       ///< one deterministic bit of the reply flipped
  kStaleReplay,   ///< the key's previous reply served instead of the fresh one
  kDisconnect,    ///< channel dies; every later call on it fails until re-dial
};

const char* FaultKindName(FaultKind kind);

/// Per-kind injection probabilities, evaluated per call in declaration
/// order; the first hit wins. All zero = pass through.
struct FaultProbabilities {
  double drop_request = 0;
  double drop_reply = 0;
  double delay = 0;
  double duplicate = 0;
  double reorder = 0;
  double truncate = 0;
  double bit_flip = 0;
  double stale_replay = 0;
  double disconnect = 0;
};

/// A scripted trigger: fire `kind` on the nth..nth+repeat-1-th matching call
/// of `type`. Scripted faults take precedence over probabilities.
struct ScriptedFault {
  MsgType type = MsgType::kPostGlobal;
  FaultKind kind = FaultKind::kDropRequest;
  /// Which counter `nth` indexes: attempts of one (type, key_a, key_b)
  /// message key, or all calls of the type. Per-key counting is invariant
  /// under thread scheduling (each key's calls are serialized by the
  /// engine); per-type counting is only deterministic in single-threaded
  /// scenarios or for types called from serial sections.
  enum class Scope : uint8_t { kPerKey, kPerType };
  Scope scope = Scope::kPerKey;
  /// 1-based index of the first matching call to fault.
  uint64_t nth = 1;
  /// Number of consecutive matching calls to fault; 0 = every one from
  /// `nth` on.
  uint64_t repeat = 1;
  /// Optional filters on the leading wire keys (first / second u64 of the
  /// request — query_id, tds_id or token depending on the type).
  std::optional<uint64_t> key_a;
  std::optional<uint64_t> key_b;
};

struct FaultPlan {
  /// Seed mixed into every probabilistic decision.
  uint64_t seed = 1;
  /// Default probabilities for every message type.
  FaultProbabilities probs;
  /// Per-type overrides (replace the defaults entirely for that type).
  std::map<MsgType, FaultProbabilities> per_type;
  std::vector<ScriptedFault> script;
  /// Latency injected by kDelay; values ≥ the call deadline turn the fault
  /// into a DeadlineExceeded whose reply the server still produced.
  double delay_seconds = 0.01;
  /// kTruncate resizes the reply envelope to this many bytes.
  size_t truncate_at = 1;

  const FaultProbabilities& ProbsFor(MsgType type) const {
    auto it = per_type.find(type);
    return it != per_type.end() ? it->second : probs;
  }
};

/// One injected fault, recorded at decision time.
struct FaultEvent {
  uint8_t type = 0;  ///< raw MsgType
  uint64_t key_a = 0;
  uint64_t key_b = 0;
  /// 1-based attempt index of this (type, key_a, key_b) message key.
  uint64_t key_attempt = 0;
  FaultKind kind = FaultKind::kNone;
};

class FaultyTransport : public Transport {
 public:
  /// `inner` is borrowed and must outlive this transport. `clock` (null =
  /// real wall clock) times injected delays; campaigns pass a VirtualClock
  /// so delay faults cost no real time.
  FaultyTransport(Transport* inner, FaultPlan plan, Clock* clock = nullptr);
  ~FaultyTransport() override;

  Result<std::unique_ptr<Channel>> Connect() override;
  const char* name() const override;

  /// Injected faults in injection order (schedule-dependent under threads).
  std::vector<FaultEvent> events() const;
  /// Injected faults sorted by (type, key, attempt, kind): identical across
  /// thread counts and backends for the same plan and workload.
  std::vector<FaultEvent> canonical_events() const;
  /// canonical_events() rendered one per line, for logs and byte-compares.
  std::string CanonicalLog() const;

  /// Total calls seen (excluding calls rejected on an already-disconnected
  /// channel) / total faults injected.
  uint64_t call_count() const;
  uint64_t injected_count() const;

  /// Shared injector state (implementation detail, public so the channel
  /// type in the .cc can reach it).
  struct State;

 private:
  Transport* inner_;
  std::string name_;
  std::shared_ptr<State> state_;
};

}  // namespace tcells::net

#endif  // TCELLS_NET_FAULTY_H_
