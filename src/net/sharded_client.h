// ShardedSsiClient: a coordinator-side router that presents N shard SSI
// backends as one logical SSI.
//
// The TDS population is hash-partitioned across shards (shard_of(tds_id) =
// splitmix64(tds_id) mod N), so all querybox and collection traffic of one
// TDS lands on one shard. Aggregation/filtering round transfers are
// partitioned by (query_id, token) instead — the SsiNode keeps staged
// partitions, round outputs and delivered results in maps independent of the
// querybox, so any shard can carry any token's bytes.
//
// Per-query coordination the single node used to do locally moves here:
//
//   - The SIZE bound is global. Each shard only sees its local item count, so
//     the router tracks accepted items from the upload accept bits and
//     short-circuits further uploads (acknowledge + reject, exactly the
//     observable behaviour of a node-side discard) once the bound is reached.
//   - TakeCollected must reproduce the exact arrival order a single node
//     would have produced, because the collection feeds RNG-driven
//     partitioning. The router logs (shard, item-count) per accepted upload
//     in serial upload order and re-interleaves the per-shard drains along
//     that log.
//   - The adversary view is merged across shards: counters summed, tag
//     histograms key-merged, blob sizes concatenated in shard order (a
//     multiset-preserving merge; order across different shard counts is not
//     comparable, within one shard count it is deterministic).
//
// Global posts fan out to every shard (each shard's TDSes fetch locally);
// personal posts live only on the target TDS's shard. With a single shard
// every method delegates verbatim, making the router an exact pass-through.
//
// Thread-safety: routing is stateless hashing; the per-query coordination
// map is mutex-guarded so concurrent queries (one serial protocol session
// each) can share one router.
#ifndef TCELLS_NET_SHARDED_CLIENT_H_
#define TCELLS_NET_SHARDED_CLIENT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "net/ssi_api.h"

namespace tcells::net {

class ShardedSsiClient : public SsiApi {
 public:
  /// `shards` are borrowed and must outlive the router. Must be non-empty.
  explicit ShardedSsiClient(std::vector<SsiApi*> shards)
      : shards_(std::move(shards)) {}

  size_t num_shards() const { return shards_.size(); }

  /// Which shard owns a TDS's querybox + collection traffic.
  size_t ShardOfTds(uint64_t tds_id) const;
  /// Which shard carries a round transfer token's bytes.
  size_t ShardOfToken(uint64_t query_id, uint64_t token) const;

  // ---- Querybox ----
  Status PostGlobal(const ssi::QueryPost& post) override;
  Status PostPersonal(uint64_t tds_id, const ssi::QueryPost& post) override;
  Result<std::vector<ssi::QueryPost>> FetchPosts(uint64_t tds_id) override;
  /// Groups the ids by owning shard (preserving per-shard submission order)
  /// so each shard sees one wire batch, then scatters the results back into
  /// input order.
  std::vector<Result<std::vector<ssi::QueryPost>>> FetchPostsBatch(
      const std::vector<uint64_t>& tds_ids) override;
  Status Acknowledge(uint64_t tds_id, uint64_t query_id) override;
  Result<uint64_t> NumAcknowledged(uint64_t query_id) override;

  // ---- Key epoch distribution ----
  /// Fans the block out to every shard (each TDS fetches from its own
  /// shard); fails on the first shard that rejects.
  Status PostEpochBlock(const Bytes& block) override;
  /// Routed to the calling TDS's shard, like its querybox traffic.
  Result<Bytes> FetchEpochBlock(uint64_t tds_id) override;

  // ---- Collection phase ----
  Result<bool> SizeReached(uint64_t query_id) override;
  Result<bool> UploadCollection(
      uint64_t query_id, uint64_t tds_id,
      const std::vector<ssi::EncryptedItem>& items) override;
  /// Applies the SIZE-bound accounting for the whole vector in submission
  /// order under one lock (an honest shard accepts every upload the router
  /// lets through, so the accept bits are decidable before the wire round
  /// trip), then fans per-shard sub-batches out and reconciles any shard
  /// that diverged (transport failure / byzantine reject) against the
  /// predicted accounting.
  std::vector<Result<bool>> UploadCollectionBatch(
      const std::vector<CollectionUpload>& uploads) override;
  Result<std::vector<ssi::EncryptedItem>> TakeCollected(
      uint64_t query_id) override;

  // ---- Aggregation / filtering rounds ----
  Status StagePartition(uint64_t query_id, uint64_t token,
                        const ssi::Partition& partition) override;
  Result<ssi::Partition> FetchPartition(uint64_t query_id,
                                        uint64_t token) override;
  Status UploadRoundOutput(
      uint64_t query_id, uint64_t token,
      const std::vector<ssi::EncryptedItem>& items) override;
  Result<std::vector<ssi::EncryptedItem>> TakeRoundOutput(
      uint64_t query_id, uint64_t token) override;
  Status ObserveAggregation(
      uint64_t query_id, const std::vector<ssi::EncryptedItem>& items) override;
  Status ObserveFiltering(
      uint64_t query_id, const std::vector<ssi::EncryptedItem>& items) override;

  // ---- Result delivery / teardown ----
  Status DeliverResult(
      uint64_t query_id, const std::vector<ssi::EncryptedItem>& items) override;
  Result<std::vector<ssi::EncryptedItem>> FetchResult(
      uint64_t query_id) override;
  Result<ssi::AdversaryView> GetAdversaryView(uint64_t query_id) override;
  Status Retire(uint64_t query_id) override;

 private:
  struct QueryState {
    bool personal = false;
    size_t home = 0;  ///< personal: the TDS's shard; global: hash(query_id).
    std::optional<uint64_t> size_bound;
    uint64_t accepted_items = 0;
    /// (shard, item count) per accepted upload, in serial upload order —
    /// the recipe for reconstructing single-node arrival order at take time.
    std::vector<std::pair<size_t, uint64_t>> upload_log;
  };

  /// Shard handling result delivery and aggregation observations for a
  /// query: the personal home, or a query-id hash for global posts (valid
  /// because global posts exist on every shard).
  size_t HomeShard(uint64_t query_id);

  std::vector<SsiApi*> shards_;
  std::mutex mu_;
  std::map<uint64_t, QueryState> queries_;
};

}  // namespace tcells::net

#endif  // TCELLS_NET_SHARDED_CLIENT_H_
