// Length-prefixed message framing for the SSI transport layer. Every message
// crossing the TDS↔SSI boundary travels as one frame: a u32 little-endian
// payload length followed by the payload bytes. The decoder enforces the same
// hostile-length discipline as the ByteReader count getters: a length prefix
// is rejected *before* any allocation when it exceeds the hard cap or the
// bytes actually present, so a malicious peer cannot drive oversized
// reserves with a 4-byte header.
#ifndef TCELLS_NET_FRAME_H_
#define TCELLS_NET_FRAME_H_

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"

namespace tcells::net {

/// Hard upper bound on one frame's payload. Generously above any partition
/// the engine produces, far below what a forged 32-bit length could claim.
inline constexpr size_t kMaxFramePayload = 64u << 20;  // 64 MiB

/// Bytes a frame of `payload_size` occupies on the wire.
inline constexpr size_t FrameWireSize(size_t payload_size) {
  return 4 + payload_size;
}

/// Appends one frame (u32 LE length + payload) to `out`.
void AppendFrame(Bytes* out, const uint8_t* payload, size_t n);
inline void AppendFrame(Bytes* out, const Bytes& payload) {
  AppendFrame(out, payload.data(), payload.size());
}

/// Decodes the next frame from a complete buffer. Corruption when the length
/// prefix exceeds kMaxFramePayload or the bytes remaining in the reader —
/// both checked before the payload is copied out.
Result<Bytes> DecodeFrame(ByteReader* reader);

/// Streaming variant for socket receive buffers: if `buf` starts with a
/// complete frame, moves its payload into `*frame`, erases the consumed bytes
/// and returns true. Returns false when more bytes are needed. Fails with
/// Corruption (via `*error`) on a hostile length prefix; the connection must
/// then be dropped, since the stream can no longer be re-synchronized.
bool TryExtractFrame(Bytes* buf, Bytes* frame, Status* error);

}  // namespace tcells::net

#endif  // TCELLS_NET_FRAME_H_
