#include "tcells/scheduler.h"

namespace tcells {

const char* QueryStateToString(QueryState state) {
  switch (state) {
    case QueryState::kQueued: return "queued";
    case QueryState::kRunning: return "running";
    case QueryState::kDone: return "done";
    case QueryState::kFailed: return "failed";
    case QueryState::kCancelled: return "cancelled";
  }
  return "unknown";
}

QueryScheduler::QueryScheduler(size_t max_inflight, AdmissionPolicy admission,
                               Runner runner)
    : max_inflight_(max_inflight),
      admission_(admission),
      runner_(std::move(runner)) {
  workers_.reserve(max_inflight_);
  for (size_t i = 0; i < max_inflight_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryScheduler::~QueryScheduler() {
  std::deque<std::shared_ptr<internal::QueryJob>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    orphaned.swap(queue_);
  }
  // Queued jobs will never run: fail their waiters now, and ask running
  // jobs to stop at their next cancellation point.
  for (const auto& job : orphaned) {
    std::lock_guard<std::mutex> lock(job->mu);
    if (job->state == QueryState::kQueued) {
      job->state = QueryState::kCancelled;
      job->error = Status::Cancelled("scheduler shut down before the query ran");
      job->cv.notify_all();
    }
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

Result<QueryHandle> QueryScheduler::Submit(
    std::shared_ptr<internal::QueryJob> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("scheduler is shut down");
    }
    // Under kReject the capacity is exactly max_inflight in-flight
    // (queued-or-running) queries — independent of worker pickup timing, so
    // the accept/reject outcome of a submission sequence is deterministic.
    if (admission_ == AdmissionPolicy::kReject &&
        running_ + queue_.size() >= max_inflight_) {
      return Status::ResourceExhausted(
          "all query slots busy (AdmissionPolicy::kReject)");
    }
    queue_.push_back(job);
  }
  work_cv_.notify_one();
  return QueryHandle(std::move(job));
}

size_t QueryScheduler::NumQueued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t QueryScheduler::NumRunning() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void QueryScheduler::WorkerLoop() {
  for (;;) {
    std::shared_ptr<internal::QueryJob> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
      running_ += 1;
    }

    bool run_it = false;
    {
      std::lock_guard<std::mutex> lock(job->mu);
      // A queued job cancelled (or failed by shutdown) before pickup is
      // already terminal; never run it.
      if (job->state == QueryState::kQueued) {
        job->state = QueryState::kRunning;
        run_it = true;
      }
    }

    if (run_it) {
      Result<protocol::RunOutcome> result = runner_(job.get());
      std::lock_guard<std::mutex> lock(job->mu);
      if (result.ok()) {
        job->state = QueryState::kDone;
        job->outcome = std::move(result).ValueOrDie();
      } else if (result.status().IsCancelled()) {
        job->state = QueryState::kCancelled;
        job->error = result.status();
      } else {
        job->state = QueryState::kFailed;
        job->error = result.status();
      }
      job->cv.notify_all();
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      running_ -= 1;
    }
  }
}

}  // namespace tcells
