// Umbrella header: the public API of the tcells library.
//
//   #include "tcells/tcells.h"
//
// pulls in everything a typical embedder needs — fleet construction, the
// querying protocols, the analysis tools and the workload generators. Fine-
// grained headers remain available for targeted use.
#ifndef TCELLS_TCELLS_H_
#define TCELLS_TCELLS_H_

// Foundations.
#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

// Cryptography and key management.
#include "crypto/broadcast.h"
#include "crypto/encryption.h"
#include "crypto/keystore.h"
#include "crypto/provisioning.h"

// Relational layer.
#include "sql/analyzer.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "storage/secure_store.h"
#include "storage/table.h"

// The distributed system: trusted servers, untrusted infrastructure,
// protocols.
#include "protocol/discovery.h"
#include "protocol/factory.h"
#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "protocol/session.h"
#include "ssi/querybox.h"
#include "tds/access_control.h"
#include "tds/tds.h"

// Evaluation tooling.
#include "analysis/cost_model.h"
#include "analysis/exposure.h"
#include "analysis/tradeoff.h"
#include "sim/device_model.h"

// Ready-made fleets.
#include "workload/generic.h"
#include "workload/health.h"
#include "workload/smart_meter.h"

#endif  // TCELLS_TCELLS_H_
