// Umbrella header: the public API of the tcells library.
//
//   #include "tcells/tcells.h"
//
// pulls in what a typical embedder needs: the tcells::Engine facade (which
// transitively exposes the querying protocols, sessions, the sharded SSI
// stack, the query scheduler and telemetry), fleet construction, key
// provisioning, the SQL front end and the analysis tooling. Engine internals
// — the SSI querybox hub, the discovery machinery, the plaintext reference
// executor — are deliberately NOT exported here; include their fine-grained
// headers directly for targeted/test use.
//
// DEPRECATION: the free-function entry point `protocol::RunQuery`
// (protocol/protocols.h) is superseded by the Engine facade — create an
// Engine (it validates configuration once, owns the possibly-sharded SSI
// stack and schedules concurrent queries) and call Engine::Run for the old
// blocking behaviour or Engine::Submit for a QueryHandle (poll Status(),
// block on Wait(), request Cancel()). Compile with
// -DTCELLS_ENABLE_DEPRECATION_WARNINGS to have every remaining direct
// RunQuery use flagged by the compiler.
#ifndef TCELLS_TCELLS_H_
#define TCELLS_TCELLS_H_

// Foundations.
#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

// Cryptography and key management.
#include "crypto/broadcast.h"
#include "crypto/encryption.h"
#include "crypto/keystore.h"
#include "crypto/provisioning.h"

// Relational layer.
#include "sql/analyzer.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "storage/secure_store.h"
#include "storage/table.h"

// The facade: Engine + protocols + sessions + telemetry (obs/).
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "tds/tds.h"

// Evaluation tooling.
#include "analysis/cost_model.h"
#include "analysis/exposure.h"
#include "analysis/tradeoff.h"
#include "sim/device_model.h"

// Ready-made fleets.
#include "workload/generic.h"
#include "workload/health.h"
#include "workload/smart_meter.h"

#endif  // TCELLS_TCELLS_H_
