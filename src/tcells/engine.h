// tcells::Engine — the unified entry point of the library.
//
// An Engine owns the fleet, the run options and the telemetry sinks
// (a MetricsRegistry plus, optionally, a Tracer collecting per-query span
// trees), and exposes the two operating modes over one shared execution
// engine:
//
//   * Run(...)        — one query end to end (the RunQuery special case);
//   * NewSession()    — several concurrent queries over the querybox hub.
//
// Options are validated once at Create, so a malformed configuration fails
// before any query is posted. See docs/OBSERVABILITY.md for the telemetry
// model and migration notes from the free functions.
#ifndef TCELLS_TCELLS_ENGINE_H_
#define TCELLS_TCELLS_ENGINE_H_

#include <memory>
#include <string>

#include "net/byzantine.h"
#include "net/channel.h"
#include "net/faulty.h"
#include "net/loopback.h"
#include "net/ssi_client.h"
#include "net/ssi_node.h"
#include "net/tcp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "protocol/factory.h"
#include "protocol/protocols.h"
#include "protocol/session.h"

namespace tcells {

class Engine {
 public:
  struct Config {
    sim::DeviceModel device;
    protocol::RunOptions options;
    /// Collect a span tree per query (obs/trace.h). Metrics are always on.
    bool tracing = true;
    /// How queriers/TDSs reach the SSI (docs/TRANSPORT.md). Loopback keeps
    /// a private in-process SSI per session; kTcp starts one SSI server on
    /// 127.0.0.1 (ephemeral port) that every session of this engine shares,
    /// so query ids must then be unique across concurrent sessions.
    net::TransportKind transport = net::TransportKind::kLoopback;
    /// Adversarial testing hooks (docs/TRANSPORT.md "Fault plans"). When
    /// either is set, the engine owns one shared SSI stack even in loopback
    /// mode, with the transport wrapped in a FaultyTransport and/or the SSI
    /// handler wrapped in a ByzantineProxy. Null = honest, fault-free.
    std::shared_ptr<const net::FaultPlan> fault_plan;
    std::shared_ptr<const net::TamperPlan> tamper_plan;
  };

  /// Validates `config.options` (RunOptions::Validate) and takes ownership
  /// of the fleet. InvalidArgument on a null/empty fleet or bad options.
  static Result<std::unique_ptr<Engine>> Create(
      std::unique_ptr<protocol::Fleet> fleet, Config config);
  /// Create with all-default configuration.
  static Result<std::unique_ptr<Engine>> Create(
      std::unique_ptr<protocol::Fleet> fleet);

  protocol::Fleet& fleet() { return *fleet_; }
  const protocol::RunOptions& options() const { return config_.options; }
  const sim::DeviceModel& device() const { return config_.device; }

  /// Engine-wide counters/histograms, accumulated across all queries.
  obs::MetricsRegistry& metrics() { return metrics_; }
  /// All span trees recorded so far (empty forever when tracing is off).
  obs::Tracer& tracer() { return tracer_; }
  /// The sink bundle handed to execution (tracer omitted when tracing off).
  obs::Telemetry telemetry();

  /// Runs one query end to end; the outcome carries its span tree when
  /// tracing is on.
  Result<protocol::RunOutcome> Run(protocol::Protocol& protocol,
                                   const protocol::Querier& querier,
                                   uint64_t query_id, const std::string& sql);

  /// A session for several concurrent queries sharing this engine's fleet,
  /// options and telemetry sinks. The session borrows the engine; it must
  /// not outlive it.
  protocol::QuerySession NewSession();

  /// Runs the discovery protocol (§4.4) for `target_sql`'s grouping
  /// attributes and returns inputs sufficient for every protocol kind.
  Result<protocol::ProtocolInputs> DiscoverInputs(
      const protocol::Querier& querier, uint64_t query_id,
      const std::string& target_sql);

  /// Latest trace recorded for `query_id` (null when unknown or tracing is
  /// off).
  std::shared_ptr<const obs::Trace> TraceFor(uint64_t query_id) const;

  /// The shared SSI client in kTcp mode or whenever a fault/tamper plan is
  /// set; null in plain loopback mode (each session then owns a private
  /// stack).
  net::SsiClient* ssi_client() { return client_.get(); }
  /// The TCP port the SSI listens on (0 in loopback mode).
  uint16_t ssi_port() const { return server_.port(); }
  /// The fault injector (null unless Config::fault_plan was set).
  net::FaultyTransport* fault_injector() { return faulty_.get(); }
  /// The byzantine proxy (null unless Config::tamper_plan was set).
  net::ByzantineProxy* byzantine_proxy() { return byzantine_.get(); }

 private:
  Engine(std::unique_ptr<protocol::Fleet> fleet, Config config);

  Status StartTransport();

  std::unique_ptr<protocol::Fleet> fleet_;
  Config config_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  /// The engine-owned SSI stack (kTcp mode, or loopback with a fault/tamper
  /// plan): the node, the optional byzantine wrapper around its handler,
  /// the backend, the optional fault decorator, and the client every
  /// session shares.
  std::unique_ptr<net::SsiNode> node_;
  std::unique_ptr<net::ByzantineProxy> byzantine_;
  net::TcpServer server_;
  std::unique_ptr<net::TcpTransport> transport_;
  std::unique_ptr<net::LoopbackTransport> loopback_;
  std::unique_ptr<net::FaultyTransport> faulty_;
  std::unique_ptr<net::SsiClient> client_;
};

}  // namespace tcells

#endif  // TCELLS_TCELLS_ENGINE_H_
