// tcells::Engine — the unified entry point of the library.
//
// An Engine owns the fleet, the run options, the telemetry sinks
// (a MetricsRegistry plus, optionally, a Tracer collecting per-query span
// trees) and the SSI stack itself: `num_shards` SsiNode instances across
// which the TDS population is hash-partitioned, fronted by a
// net::ShardedSsiClient coordinator (an exact pass-through at one shard).
// On top sits a QueryScheduler with `max_inflight_queries` worker slots, so
// dozens of queries can be in flight concurrently:
//
//   * Submit(...)     — enqueue a query, get a QueryHandle (poll Status(),
//                       block on Wait(), request Cancel());
//   * Run(...)        — submit-then-wait convenience (one query end to end);
//   * NewSession()    — several interleaved queries over the querybox hub,
//                       batch-style, on the caller's thread.
//
// Configuration — RunOptions and the shard/concurrency knobs — is validated
// once at Create, so a malformed configuration fails before any query is
// posted. Determinism: a query's result is bit-identical whether it runs
// alone or alongside others, at any shard count and thread count, on
// loopback or TCP — every query's randomness derives only from its own
// (seed, query_id) stream, and the shard router reconstructs single-node
// orderings exactly (see DESIGN.md "Sharding & scheduling").
#ifndef TCELLS_TCELLS_ENGINE_H_
#define TCELLS_TCELLS_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "keys/key_authority.h"
#include "keys/tds_keys.h"
#include "net/byzantine.h"
#include "net/channel.h"
#include "net/faulty.h"
#include "net/loopback.h"
#include "net/sharded_client.h"
#include "net/ssi_client.h"
#include "net/ssi_node.h"
#include "net/tcp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "protocol/factory.h"
#include "protocol/protocols.h"
#include "protocol/session.h"
#include "tcells/query_handle.h"
#include "tcells/scheduler.h"

namespace tcells {

/// How queries are keyed (docs/KEYS.md).
enum class KeyMode {
  /// The fleet's provisioned static KeyStore — bit-identical to the
  /// pre-key-management engine.
  kStatic,
  /// Per-query session keys: the engine owns a keys::KeyAuthority, every
  /// query carries a public key posting, TDS contributions are
  /// admission-checked, and RevokeTds() cuts any set of TDSs out of the key
  /// schedule with one epoch-rollover broadcast.
  kDynamic,
};

class Engine {
 public:
  /// Hard cap on Config::num_shards (sanity bound, not a scaling limit).
  static constexpr size_t kMaxShards = 64;
  /// Hard cap on Config::max_inflight_queries (each slot is one worker
  /// thread).
  static constexpr size_t kMaxInflightQueries = 256;
  /// Per-backend batch sizes picked when transport_batch_max_calls is 0
  /// (auto). Loopback dispatch is an in-process call, so small frames keep
  /// latency flat; TCP amortizes syscalls and prefers large frames (see the
  /// batch sweep in BENCH_transport.json and ROADMAP item 1).
  static constexpr size_t kAutoBatchCallsLoopback = 8;
  static constexpr size_t kAutoBatchCallsTcp = 64;

  struct Config {
    sim::DeviceModel device;
    protocol::RunOptions options;
    /// Collect a span tree per query (obs/trace.h). Metrics are always on.
    bool tracing = true;
    /// How queriers/TDSs reach the SSI (docs/TRANSPORT.md). Loopback is the
    /// in-process default; kTcp starts one SSI server per shard on
    /// 127.0.0.1 (ephemeral ports). Either way the engine owns the stack
    /// and all queries share it, so query ids must be unique across
    /// concurrent queries.
    net::TransportKind transport = net::TransportKind::kLoopback;
    /// SSI shards the TDS population is hash-partitioned across. 1 (the
    /// default) is byte-compatible with the single-node engine; validated
    /// in [1, kMaxShards] at Create.
    size_t num_shards = 1;
    /// Concurrent query slots of the scheduler (worker threads executing
    /// submitted queries). Validated in [1, kMaxInflightQueries] at Create.
    size_t max_inflight_queries = 4;
    /// What Submit does once every slot is busy (scheduler.h).
    AdmissionPolicy admission = AdmissionPolicy::kQueue;
    /// Calls coalesced into one transport frame per shard client
    /// (net::BatchOptions::max_calls_per_frame). 0 — the default — picks a
    /// per-backend value at StartShards, where the transport kind is known:
    /// kAutoBatchCallsLoopback for loopback (small frames; in-process
    /// dispatch is cheap) and kAutoBatchCallsTcp for TCP (the batch sweep
    /// in BENCH_transport.json shows TCP wants 64+ calls/frame). 1 keeps
    /// every call on the legacy single-call wire format; explicit values
    /// are validated in [1, net::kMaxCallsPerBatch] at Create.
    size_t transport_batch_max_calls = 0;
    /// Frames one shard client keeps on the wire concurrently
    /// (net::BatchOptions::max_inflight_frames). Validated >= 1 at Create.
    size_t transport_max_inflight = 4;
    /// Adversarial testing hooks (docs/TRANSPORT.md "Fault plans"): each
    /// shard's transport is wrapped in a FaultyTransport and/or its handler
    /// in a ByzantineProxy. Null = honest, fault-free.
    std::shared_ptr<const net::FaultPlan> fault_plan;
    std::shared_ptr<const net::TamperPlan> tamper_plan;
    /// Dynamic key management (docs/KEYS.md): kDynamic makes the engine own
    /// a KeyAuthority (seeded from options.seed), enroll every TDS into the
    /// complete-subtree broadcast tree, publish epoch blocks through the SSI
    /// and run every query under per-query session keys. kStatic — the
    /// default — is bit-identical to the seed behaviour.
    KeyMode key_mode = KeyMode::kStatic;
  };

  /// Validates the configuration (RunOptions::Validate plus the shard and
  /// concurrency knobs) and takes ownership of the fleet. InvalidArgument on
  /// a null/empty fleet or any bad knob.
  static Result<std::unique_ptr<Engine>> Create(
      std::unique_ptr<protocol::Fleet> fleet, Config config);
  /// Create with all-default configuration.
  static Result<std::unique_ptr<Engine>> Create(
      std::unique_ptr<protocol::Fleet> fleet);

  ~Engine();

  protocol::Fleet& fleet() { return *fleet_; }
  const protocol::RunOptions& options() const { return config_.options; }
  const sim::DeviceModel& device() const { return config_.device; }

  /// Engine-wide counters/histograms, accumulated across all queries.
  obs::MetricsRegistry& metrics() { return metrics_; }
  /// All span trees recorded so far (empty forever when tracing is off).
  obs::Tracer& tracer() { return tracer_; }
  /// The sink bundle handed to execution (tracer omitted when tracing off).
  obs::Telemetry telemetry();

  /// Enqueues one query with the scheduler and returns immediately. The
  /// handle observes and controls the run; `protocol` and `querier` must
  /// stay alive until it finishes. Fails on admission rejection
  /// (ResourceExhausted under AdmissionPolicy::kReject) — never blocks.
  Result<QueryHandle> Submit(protocol::Protocol& protocol,
                             const protocol::Querier& querier,
                             uint64_t query_id, const std::string& sql);
  /// Same, with per-query RunOptions overriding the engine defaults
  /// (validated here). The transport/clock knobs still come from the
  /// engine's own options — the SSI stack is shared.
  Result<QueryHandle> Submit(protocol::Protocol& protocol,
                             const protocol::Querier& querier,
                             uint64_t query_id, const std::string& sql,
                             const protocol::RunOptions& options);
  /// Personal-querybox variant: the query is addressed to one TDS only.
  Result<QueryHandle> SubmitPersonal(protocol::Protocol& protocol,
                                     const protocol::Querier& querier,
                                     uint64_t query_id, uint64_t tds_id,
                                     const std::string& sql);

  /// Runs one query end to end (submit-then-wait); the outcome carries its
  /// span tree when tracing is on.
  Result<protocol::RunOutcome> Run(protocol::Protocol& protocol,
                                   const protocol::Querier& querier,
                                   uint64_t query_id, const std::string& sql);
  /// Same, with per-query RunOptions overriding the engine defaults.
  Result<protocol::RunOutcome> Run(protocol::Protocol& protocol,
                                   const protocol::Querier& querier,
                                   uint64_t query_id, const std::string& sql,
                                   const protocol::RunOptions& options);

  /// A session for several interleaved queries sharing this engine's fleet,
  /// options, telemetry sinks and SSI stack, run batch-style on the
  /// caller's thread (bypasses the scheduler). The session borrows the
  /// engine; it must not outlive it.
  protocol::QuerySession NewSession();

  /// Runs the discovery protocol (§4.4) for `target_sql`'s grouping
  /// attributes and returns inputs sufficient for every protocol kind.
  Result<protocol::ProtocolInputs> DiscoverInputs(
      const protocol::Querier& querier, uint64_t query_id,
      const std::string& target_sql);

  /// Latest trace recorded for `query_id` (null when unknown or tracing is
  /// off).
  std::shared_ptr<const obs::Trace> TraceFor(uint64_t query_id) const;

  /// The logical SSI every query goes through: the shard router (an exact
  /// pass-through to the single backend at num_shards == 1).
  net::SsiApi* ssi_client() { return router_.get(); }
  /// The scheduler behind Submit (introspection for tests/benches).
  QueryScheduler& scheduler() { return *scheduler_; }

  /// Dynamic key mode only (null in static mode).
  keys::KeyAuthority* key_authority() { return key_authority_.get(); }
  /// Revokes `tds_ids` from the key schedule: one epoch rollover whose new
  /// block excludes them from the broadcast cover, republished through every
  /// SSI shard. All their subsequent contributions are rejected.
  /// FailedPrecondition in static key mode.
  Status RevokeTds(const std::vector<uint64_t>& tds_ids);
  /// Rolls the key epoch without changing the revoked set (key hygiene);
  /// in-flight queries keep completing — their posting epoch stays inside
  /// the retained window. FailedPrecondition in static key mode.
  Status RolloverEpoch();
  /// Adversarial hook: publishes arbitrary bytes as the SSI's epoch block
  /// (forged or stale-replayed rollover) WITHOUT touching the authority.
  /// TDSs must reject/ignore it; the authority's admission check still
  /// enforces the true current epoch.
  Status PostRawEpochBlock(const Bytes& block);

  size_t num_shards() const { return config_.num_shards; }
  /// Shard i's node (i < num_shards) — test/diagnostic access to per-shard
  /// state such as num_active_queries().
  net::SsiNode* shard_node(size_t i) { return shards_[i].node.get(); }
  /// The TCP port shard 0 listens on (0 in loopback mode).
  uint16_t ssi_port() const;
  /// Shard i's TCP port (0 in loopback mode).
  uint16_t shard_port(size_t i) const;
  /// Shard 0's fault injector (null unless Config::fault_plan was set).
  net::FaultyTransport* fault_injector() { return shards_[0].faulty.get(); }
  /// Shard 0's byzantine proxy (null unless Config::tamper_plan was set).
  net::ByzantineProxy* byzantine_proxy() { return shards_[0].byzantine.get(); }
  /// Shard i's fault injector / byzantine proxy (null when unset).
  net::FaultyTransport* shard_fault_injector(size_t i) {
    return shards_[i].faulty.get();
  }
  net::ByzantineProxy* shard_byzantine_proxy(size_t i) {
    return shards_[i].byzantine.get();
  }

 private:
  /// One shard's SSI stack: the node, the optional byzantine wrapper around
  /// its handler, the backend (loopback or TCP), the optional fault
  /// decorator, and the typed client.
  struct ShardStack {
    std::unique_ptr<net::SsiNode> node;
    std::unique_ptr<net::ByzantineProxy> byzantine;
    std::unique_ptr<net::TcpServer> server;
    std::unique_ptr<net::TcpTransport> transport;
    std::unique_ptr<net::LoopbackTransport> loopback;
    std::unique_ptr<net::FaultyTransport> faulty;
    std::unique_ptr<net::SsiClient> client;
  };

  Engine(std::unique_ptr<protocol::Fleet> fleet, Config config);

  Status StartShards();
  /// Dynamic key mode bring-up: creates the authority, enrolls + installs a
  /// TdsKeyState on every fleet member, publishes the epoch-0 block.
  Status StartKeys();
  void StartScheduler();
  Result<QueryHandle> SubmitInternal(protocol::Protocol& protocol,
                                     const protocol::Querier& querier,
                                     uint64_t query_id,
                                     std::optional<uint64_t> tds_id,
                                     const std::string& sql,
                                     const protocol::RunOptions& options);

  std::unique_ptr<protocol::Fleet> fleet_;
  Config config_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  std::vector<ShardStack> shards_;
  std::unique_ptr<net::ShardedSsiClient> router_;
  /// Dynamic key mode state (all null/empty in static mode). The key states
  /// fetch epoch blocks through `block_source_` (an adapter over the
  /// router), so they must sit below the shard stacks and above the
  /// scheduler in teardown order.
  std::unique_ptr<keys::KeyAuthority> key_authority_;
  std::unique_ptr<keys::EpochBlockSource> block_source_;
  std::vector<std::unique_ptr<keys::TdsKeyState>> key_states_;
  /// Last member: workers reference the router/fleet, so the scheduler must
  /// be torn down (drained + joined) before anything above it.
  std::unique_ptr<QueryScheduler> scheduler_;
};

}  // namespace tcells

#endif  // TCELLS_TCELLS_ENGINE_H_
