// QueryScheduler: admission control + fair slot allocation for concurrent
// queries.
//
// A fixed pool of `max_inflight` worker threads drains a FIFO queue — FCFS
// is the fairness policy: no submitted query can be overtaken, so a burst of
// cheap queries cannot starve an expensive one that arrived first. Admission
// is configurable: kQueue accepts everything and lets the backlog grow;
// kReject caps the in-flight (queued-or-running) population at max_inflight
// and fails Submit with ResourceExhausted beyond it (bounded latency for
// callers that would rather re-route than wait).
//
// The scheduler knows nothing about protocols: the Engine hands it a runner
// callback that executes one job (a one-query QuerySession against the
// engine's sharded SSI stack) and cleans up after failures. Determinism is
// the runner's concern — each query's randomness derives only from its own
// seed, so scheduling order can never reach the bits of a result.
#ifndef TCELLS_TCELLS_SCHEDULER_H_
#define TCELLS_TCELLS_SCHEDULER_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "tcells/query_handle.h"

namespace tcells {

/// What Submit does when every scheduler slot is busy.
enum class AdmissionPolicy {
  kQueue,   ///< enqueue; the query runs when a slot frees up (default)
  kReject,  ///< fail Submit with ResourceExhausted instead of queueing
};

class QueryScheduler {
 public:
  /// Executes one job to completion. Runs on a worker thread; must be
  /// thread-safe across concurrent jobs.
  using Runner = std::function<Result<protocol::RunOutcome>(
      internal::QueryJob* job)>;

  /// Starts `max_inflight` worker threads (must be >= 1).
  QueryScheduler(size_t max_inflight, AdmissionPolicy admission,
                 Runner runner);

  /// Cancels queued jobs, waits for running ones to stop at their next
  /// cancellation point, and joins the workers.
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Admits a job (FIFO). Under kReject, fails with ResourceExhausted when
  /// max_inflight jobs are already queued or running.
  Result<QueryHandle> Submit(std::shared_ptr<internal::QueryJob> job);

  size_t max_inflight() const { return max_inflight_; }
  /// Jobs admitted but not yet picked up by a worker.
  size_t NumQueued() const;
  /// Jobs currently executing on a worker.
  size_t NumRunning() const;

 private:
  void WorkerLoop();

  const size_t max_inflight_;
  const AdmissionPolicy admission_;
  const Runner runner_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<internal::QueryJob>> queue_;
  size_t running_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tcells

#endif  // TCELLS_TCELLS_SCHEDULER_H_
