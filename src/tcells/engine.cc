#include "tcells/engine.h"

namespace tcells {

Engine::Engine(std::unique_ptr<protocol::Fleet> fleet, Config config)
    : fleet_(std::move(fleet)), config_(std::move(config)) {}

Result<std::unique_ptr<Engine>> Engine::Create(
    std::unique_ptr<protocol::Fleet> fleet, Config config) {
  if (!fleet || fleet->size() == 0) {
    return Status::InvalidArgument("Engine needs a non-empty fleet");
  }
  TCELLS_RETURN_IF_ERROR(config.options.Validate());
  std::unique_ptr<Engine> engine(
      new Engine(std::move(fleet), std::move(config)));
  TCELLS_RETURN_IF_ERROR(engine->StartTransport());
  return engine;
}

Status Engine::StartTransport() {
  if (config_.transport != net::TransportKind::kTcp) return Status::OK();
  node_ = std::make_unique<net::SsiNode>();
  TCELLS_RETURN_IF_ERROR(server_.Start(node_->handler()));
  transport_ =
      std::make_unique<net::TcpTransport>("127.0.0.1", server_.port());
  client_ = std::make_unique<net::SsiClient>(
      transport_.get(), protocol::TransportRetryPolicy(config_.options),
      &metrics_);
  return Status::OK();
}

Result<std::unique_ptr<Engine>> Engine::Create(
    std::unique_ptr<protocol::Fleet> fleet) {
  return Create(std::move(fleet), Config());
}

obs::Telemetry Engine::telemetry() {
  obs::Telemetry t;
  t.metrics = &metrics_;
  t.tracer = config_.tracing ? &tracer_ : nullptr;
  return t;
}

Result<protocol::RunOutcome> Engine::Run(protocol::Protocol& protocol,
                                         const protocol::Querier& querier,
                                         uint64_t query_id,
                                         const std::string& sql) {
  return protocol::RunQuery(protocol, fleet_.get(), querier, query_id, sql,
                            config_.device, config_.options, telemetry(),
                            client_.get());
}

protocol::QuerySession Engine::NewSession() {
  return protocol::QuerySession(fleet_.get(), config_.device, config_.options,
                                telemetry(), client_.get());
}

Result<protocol::ProtocolInputs> Engine::DiscoverInputs(
    const protocol::Querier& querier, uint64_t query_id,
    const std::string& target_sql) {
  return protocol::DiscoverInputs(fleet_.get(), querier, query_id, target_sql,
                                  config_.device, config_.options);
}

std::shared_ptr<const obs::Trace> Engine::TraceFor(uint64_t query_id) const {
  return tracer_.TraceFor(query_id);
}

}  // namespace tcells
