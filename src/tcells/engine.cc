#include "tcells/engine.h"

#include <algorithm>

#include "crypto/hmac.h"
#include "net/ssi_wire.h"

namespace tcells {

namespace {

/// Adapter: TdsKeyStates fetch the latest epoch block through the engine's
/// shard router (FetchEpochBlock routes to the TDS's home shard).
class RouterBlockSource : public keys::EpochBlockSource {
 public:
  explicit RouterBlockSource(net::SsiApi* client) : client_(client) {}
  Result<Bytes> FetchLatestBlock(uint64_t tds_id) override {
    return client_->FetchEpochBlock(tds_id);
  }

 private:
  net::SsiApi* client_;
};

/// The authority master secret of a dynamic-mode engine, derived from the
/// run seed so equal configurations produce byte-identical key schedules.
Bytes AuthorityMaster(uint64_t seed) {
  Bytes material;
  ByteWriter w(&material);
  w.PutU64(seed);
  w.PutU64(seed ^ 0x6b65792d6d617374ULL);
  return crypto::DeriveKey(material, "authority-master");
}

}  // namespace

Engine::Engine(std::unique_ptr<protocol::Fleet> fleet, Config config)
    : fleet_(std::move(fleet)), config_(std::move(config)) {}

Engine::~Engine() = default;

Result<std::unique_ptr<Engine>> Engine::Create(
    std::unique_ptr<protocol::Fleet> fleet, Config config) {
  if (!fleet || fleet->size() == 0) {
    return Status::InvalidArgument("Engine needs a non-empty fleet");
  }
  TCELLS_RETURN_IF_ERROR(config.options.Validate());
  if (config.num_shards == 0) {
    return Status::InvalidArgument("Engine::Config: num_shards must be >= 1");
  }
  if (config.num_shards > kMaxShards) {
    return Status::InvalidArgument(
        "Engine::Config: num_shards exceeds kMaxShards (64)");
  }
  if (config.max_inflight_queries == 0) {
    return Status::InvalidArgument(
        "Engine::Config: max_inflight_queries must be >= 1");
  }
  if (config.max_inflight_queries > kMaxInflightQueries) {
    return Status::InvalidArgument(
        "Engine::Config: max_inflight_queries exceeds kMaxInflightQueries "
        "(256)");
  }
  // 0 = auto: resolved per backend in StartShards, where the transport kind
  // is known. Explicit values are bounds-checked here.
  if (config.transport_batch_max_calls > net::kMaxCallsPerBatch) {
    return Status::InvalidArgument(
        "Engine::Config: transport_batch_max_calls exceeds "
        "net::kMaxCallsPerBatch");
  }
  if (config.transport_max_inflight == 0) {
    return Status::InvalidArgument(
        "Engine::Config: transport_max_inflight must be >= 1");
  }
  std::unique_ptr<Engine> engine(
      new Engine(std::move(fleet), std::move(config)));
  TCELLS_RETURN_IF_ERROR(engine->StartShards());
  if (engine->config_.key_mode == KeyMode::kDynamic) {
    TCELLS_RETURN_IF_ERROR(engine->StartKeys());
  }
  engine->StartScheduler();
  return engine;
}

Status Engine::StartShards() {
  shards_.resize(config_.num_shards);
  std::vector<net::SsiApi*> shard_apis;
  shard_apis.reserve(shards_.size());
  for (ShardStack& shard : shards_) {
    shard.node = std::make_unique<net::SsiNode>();
    net::Handler handler = shard.node->handler();
    if (config_.tamper_plan != nullptr) {
      shard.byzantine =
          std::make_unique<net::ByzantineProxy>(handler, *config_.tamper_plan);
      handler = shard.byzantine->handler();
    }
    net::Transport* base = nullptr;
    if (config_.transport == net::TransportKind::kTcp) {
      shard.server = std::make_unique<net::TcpServer>();
      TCELLS_RETURN_IF_ERROR(shard.server->Start(std::move(handler)));
      shard.transport = std::make_unique<net::TcpTransport>(
          "127.0.0.1", shard.server->port());
      base = shard.transport.get();
    } else {
      shard.loopback =
          std::make_unique<net::LoopbackTransport>(std::move(handler));
      base = shard.loopback.get();
    }
    if (config_.fault_plan != nullptr) {
      shard.faulty = std::make_unique<net::FaultyTransport>(
          base, *config_.fault_plan, config_.options.clock);
      base = shard.faulty.get();
    }
    net::BatchOptions batch;
    batch.max_calls_per_frame =
        config_.transport_batch_max_calls != 0
            ? config_.transport_batch_max_calls
            : (config_.transport == net::TransportKind::kTcp
                   ? kAutoBatchCallsTcp
                   : kAutoBatchCallsLoopback);
    batch.max_inflight_frames = config_.transport_max_inflight;
    shard.client = std::make_unique<net::SsiClient>(
        base, protocol::TransportRetryPolicy(config_.options), &metrics_,
        batch);
    shard_apis.push_back(shard.client.get());
  }
  router_ = std::make_unique<net::ShardedSsiClient>(std::move(shard_apis));
  return Status::OK();
}

Status Engine::StartKeys() {
  uint64_t max_id = 0;
  for (size_t i = 0; i < fleet_->size(); ++i) {
    max_id = std::max(max_id, fleet_->at(i)->id());
  }
  TCELLS_ASSIGN_OR_RETURN(
      key_authority_,
      keys::KeyAuthority::Create(AuthorityMaster(config_.options.seed),
                                 max_id + 1, config_.options.seed));
  block_source_ = std::make_unique<RouterBlockSource>(router_.get());
  key_states_.reserve(fleet_->size());
  for (size_t i = 0; i < fleet_->size(); ++i) {
    tds::TrustedDataServer* server = fleet_->at(i);
    TCELLS_ASSIGN_OR_RETURN(crypto::BroadcastDeviceKeys device_keys,
                            key_authority_->EnrollDevice(server->id()));
    key_states_.push_back(std::make_unique<keys::TdsKeyState>(
        server->id(), std::move(device_keys), block_source_.get()));
    server->InstallKeyState(key_states_.back().get());
  }
  // Publish the epoch-0 block so TDSs can adopt a window before the first
  // query, and flip every later query into dynamic mode.
  TCELLS_RETURN_IF_ERROR(
      router_->PostEpochBlock(key_authority_->CurrentBlock()));
  // Prime every TDS with the epoch-0 window (a device syncs its key state
  // when it comes online). Best-effort: a TDS whose fetch is eaten by a
  // fault plan simply refreshes on demand at its first serve. This priming
  // is what makes mid-run revocation observable as *rejected* contributions:
  // a primed-then-revoked TDS still derives the posting's session keys from
  // its stale window, answers, and is caught by the admission check.
  for (auto& state : key_states_) (void)state->Refresh();
  config_.options.key_authority = key_authority_.get();
  return Status::OK();
}

Status Engine::RevokeTds(const std::vector<uint64_t>& tds_ids) {
  if (key_authority_ == nullptr) {
    return Status::FailedPrecondition(
        "RevokeTds requires Config::key_mode == KeyMode::kDynamic");
  }
  TCELLS_RETURN_IF_ERROR(key_authority_->Revoke(tds_ids));
  return router_->PostEpochBlock(key_authority_->CurrentBlock());
}

Status Engine::RolloverEpoch() {
  if (key_authority_ == nullptr) {
    return Status::FailedPrecondition(
        "RolloverEpoch requires Config::key_mode == KeyMode::kDynamic");
  }
  TCELLS_RETURN_IF_ERROR(key_authority_->Rollover());
  return router_->PostEpochBlock(key_authority_->CurrentBlock());
}

Status Engine::PostRawEpochBlock(const Bytes& block) {
  return router_->PostEpochBlock(block);
}

void Engine::StartScheduler() {
  scheduler_ = std::make_unique<QueryScheduler>(
      config_.max_inflight_queries, config_.admission,
      [this](internal::QueryJob* job) -> Result<protocol::RunOutcome> {
        // Each job is a one-query session against the shared sharded stack:
        // its randomness derives only from (options.seed, query_id), so the
        // result is bit-identical to a solo run regardless of what else is
        // in flight.
        protocol::RunOptions opts = job->options;
        opts.cancel = &job->cancel;
        // Dynamic key mode is an engine-level property: per-query options
        // cannot opt out (the fleet's key states are installed).
        if (key_authority_ != nullptr) {
          opts.key_authority = key_authority_.get();
        }
        protocol::QuerySession session(fleet_.get(), config_.device, opts,
                                       telemetry(), router_.get());
        Status submitted =
            job->personal_tds
                ? session.SubmitPersonal(job->query_id, *job->personal_tds,
                                         job->querier, job->protocol, job->sql)
                : session.Submit(job->query_id, job->querier, job->protocol,
                                 job->sql);
        if (!submitted.ok()) return submitted;
        Result<std::map<uint64_t, protocol::RunOutcome>> outcomes =
            session.RunAll();
        if (!outcomes.ok()) {
          // A failed or cancelled run never reached the session's own
          // retire step; release the query's shard state so nothing leaks
          // into later queries (best-effort — the query may be half-posted).
          (void)router_->Retire(job->query_id);
          return outcomes.status();
        }
        auto it = outcomes->find(job->query_id);
        if (it == outcomes->end()) {
          return Status::Internal("query produced no outcome");
        }
        return std::move(it->second);
      });
}

Result<std::unique_ptr<Engine>> Engine::Create(
    std::unique_ptr<protocol::Fleet> fleet) {
  return Create(std::move(fleet), Config());
}

obs::Telemetry Engine::telemetry() {
  obs::Telemetry t;
  t.metrics = &metrics_;
  t.tracer = config_.tracing ? &tracer_ : nullptr;
  return t;
}

Result<QueryHandle> Engine::SubmitInternal(
    protocol::Protocol& protocol, const protocol::Querier& querier,
    uint64_t query_id, std::optional<uint64_t> tds_id, const std::string& sql,
    const protocol::RunOptions& options) {
  TCELLS_RETURN_IF_ERROR(options.Validate());
  auto job = std::make_shared<internal::QueryJob>();
  job->query_id = query_id;
  job->protocol = &protocol;
  job->querier = &querier;
  job->sql = sql;
  job->personal_tds = tds_id;
  job->options = options;
  return scheduler_->Submit(std::move(job));
}

Result<QueryHandle> Engine::Submit(protocol::Protocol& protocol,
                                   const protocol::Querier& querier,
                                   uint64_t query_id, const std::string& sql) {
  return SubmitInternal(protocol, querier, query_id, std::nullopt, sql,
                        config_.options);
}

Result<QueryHandle> Engine::Submit(protocol::Protocol& protocol,
                                   const protocol::Querier& querier,
                                   uint64_t query_id, const std::string& sql,
                                   const protocol::RunOptions& options) {
  return SubmitInternal(protocol, querier, query_id, std::nullopt, sql,
                        options);
}

Result<QueryHandle> Engine::SubmitPersonal(protocol::Protocol& protocol,
                                           const protocol::Querier& querier,
                                           uint64_t query_id, uint64_t tds_id,
                                           const std::string& sql) {
  return SubmitInternal(protocol, querier, query_id, tds_id, sql,
                        config_.options);
}

Result<protocol::RunOutcome> Engine::Run(protocol::Protocol& protocol,
                                         const protocol::Querier& querier,
                                         uint64_t query_id,
                                         const std::string& sql) {
  TCELLS_ASSIGN_OR_RETURN(QueryHandle handle,
                          Submit(protocol, querier, query_id, sql));
  return handle.Wait();
}

Result<protocol::RunOutcome> Engine::Run(protocol::Protocol& protocol,
                                         const protocol::Querier& querier,
                                         uint64_t query_id,
                                         const std::string& sql,
                                         const protocol::RunOptions& options) {
  TCELLS_ASSIGN_OR_RETURN(QueryHandle handle,
                          Submit(protocol, querier, query_id, sql, options));
  return handle.Wait();
}

protocol::QuerySession Engine::NewSession() {
  return protocol::QuerySession(fleet_.get(), config_.device, config_.options,
                                telemetry(), router_.get());
}

Result<protocol::ProtocolInputs> Engine::DiscoverInputs(
    const protocol::Querier& querier, uint64_t query_id,
    const std::string& target_sql) {
  return protocol::DiscoverInputs(fleet_.get(), querier, query_id, target_sql,
                                  config_.device, config_.options);
}

std::shared_ptr<const obs::Trace> Engine::TraceFor(uint64_t query_id) const {
  return tracer_.TraceFor(query_id);
}

uint16_t Engine::ssi_port() const { return shard_port(0); }

uint16_t Engine::shard_port(size_t i) const {
  return shards_[i].server ? shards_[i].server->port() : 0;
}

}  // namespace tcells
