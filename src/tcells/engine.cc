#include "tcells/engine.h"

namespace tcells {

Engine::Engine(std::unique_ptr<protocol::Fleet> fleet, Config config)
    : fleet_(std::move(fleet)), config_(std::move(config)) {}

Result<std::unique_ptr<Engine>> Engine::Create(
    std::unique_ptr<protocol::Fleet> fleet, Config config) {
  if (!fleet || fleet->size() == 0) {
    return Status::InvalidArgument("Engine needs a non-empty fleet");
  }
  TCELLS_RETURN_IF_ERROR(config.options.Validate());
  std::unique_ptr<Engine> engine(
      new Engine(std::move(fleet), std::move(config)));
  TCELLS_RETURN_IF_ERROR(engine->StartTransport());
  return engine;
}

Status Engine::StartTransport() {
  const bool adversarial =
      config_.fault_plan != nullptr || config_.tamper_plan != nullptr;
  // Plain loopback: every session owns a private in-process stack; nothing
  // to start. With a fault or tamper plan the engine owns one shared stack
  // even on loopback, so the injected adversary sees every exchange.
  if (config_.transport != net::TransportKind::kTcp && !adversarial) {
    return Status::OK();
  }
  node_ = std::make_unique<net::SsiNode>();
  net::Handler handler = node_->handler();
  if (config_.tamper_plan != nullptr) {
    byzantine_ =
        std::make_unique<net::ByzantineProxy>(handler, *config_.tamper_plan);
    handler = byzantine_->handler();
  }
  net::Transport* base = nullptr;
  if (config_.transport == net::TransportKind::kTcp) {
    TCELLS_RETURN_IF_ERROR(server_.Start(std::move(handler)));
    transport_ =
        std::make_unique<net::TcpTransport>("127.0.0.1", server_.port());
    base = transport_.get();
  } else {
    loopback_ = std::make_unique<net::LoopbackTransport>(std::move(handler));
    base = loopback_.get();
  }
  if (config_.fault_plan != nullptr) {
    faulty_ = std::make_unique<net::FaultyTransport>(
        base, *config_.fault_plan, config_.options.clock);
    base = faulty_.get();
  }
  client_ = std::make_unique<net::SsiClient>(
      base, protocol::TransportRetryPolicy(config_.options), &metrics_);
  return Status::OK();
}

Result<std::unique_ptr<Engine>> Engine::Create(
    std::unique_ptr<protocol::Fleet> fleet) {
  return Create(std::move(fleet), Config());
}

obs::Telemetry Engine::telemetry() {
  obs::Telemetry t;
  t.metrics = &metrics_;
  t.tracer = config_.tracing ? &tracer_ : nullptr;
  return t;
}

Result<protocol::RunOutcome> Engine::Run(protocol::Protocol& protocol,
                                         const protocol::Querier& querier,
                                         uint64_t query_id,
                                         const std::string& sql) {
  return protocol::RunQuery(protocol, fleet_.get(), querier, query_id, sql,
                            config_.device, config_.options, telemetry(),
                            client_.get());
}

protocol::QuerySession Engine::NewSession() {
  return protocol::QuerySession(fleet_.get(), config_.device, config_.options,
                                telemetry(), client_.get());
}

Result<protocol::ProtocolInputs> Engine::DiscoverInputs(
    const protocol::Querier& querier, uint64_t query_id,
    const std::string& target_sql) {
  return protocol::DiscoverInputs(fleet_.get(), querier, query_id, target_sql,
                                  config_.device, config_.options);
}

std::shared_ptr<const obs::Trace> Engine::TraceFor(uint64_t query_id) const {
  return tracer_.TraceFor(query_id);
}

}  // namespace tcells
