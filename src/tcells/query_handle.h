// QueryHandle: the async face of one submitted query.
//
// Engine::Submit enqueues a query with the scheduler and returns a handle;
// the caller polls Status(), blocks on Wait(), or requests cooperative
// Cancel(). Engine::Run is submit-then-wait. Handles are cheap shared
// references to the job's state — copyable, and safe to keep past the
// query's completion (Wait simply returns the stored outcome again).
#ifndef TCELLS_TCELLS_QUERY_HANDLE_H_
#define TCELLS_TCELLS_QUERY_HANDLE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/result.h"
#include "protocol/protocols.h"

namespace tcells {

/// Lifecycle of a submitted query.
enum class QueryState {
  kQueued,     ///< admitted, waiting for a scheduler slot
  kRunning,    ///< a worker is executing the protocol phases
  kDone,       ///< finished; Wait() returns the outcome
  kFailed,     ///< finished with an error; Wait() returns it
  kCancelled,  ///< cancelled before or during execution
};

const char* QueryStateToString(QueryState state);

namespace internal {

/// Shared state between a QueryHandle and the scheduler worker running the
/// query. The mutex guards state/outcome/error; `cancel` is the cooperative
/// flag the run checks at its serial boundaries (RunOptions::cancel).
struct QueryJob {
  uint64_t query_id = 0;
  protocol::Protocol* protocol = nullptr;
  const protocol::Querier* querier = nullptr;
  std::string sql;
  std::optional<uint64_t> personal_tds;
  protocol::RunOptions options;

  std::atomic<bool> cancel{false};

  std::mutex mu;
  std::condition_variable cv;
  QueryState state = QueryState::kQueued;
  std::optional<protocol::RunOutcome> outcome;  ///< set iff state == kDone
  ::tcells::Status error;  ///< set iff state == kFailed / kCancelled
};

}  // namespace internal

class QueryHandle {
 public:
  /// An empty handle; valid() is false and every other call is unusable.
  QueryHandle() = default;

  bool valid() const { return job_ != nullptr; }
  uint64_t query_id() const { return job_->query_id; }

  /// Current lifecycle state (non-blocking).
  QueryState Status() const {
    std::lock_guard<std::mutex> lock(job_->mu);
    return job_->state;
  }

  /// True once the query reached a terminal state.
  bool Finished() const {
    QueryState s = Status();
    return s == QueryState::kDone || s == QueryState::kFailed ||
           s == QueryState::kCancelled;
  }

  /// Blocks until the query reaches a terminal state and returns its
  /// outcome (or the failure / Cancelled status). Idempotent: repeated
  /// waits return the same stored result.
  Result<protocol::RunOutcome> Wait() {
    std::unique_lock<std::mutex> lock(job_->mu);
    job_->cv.wait(lock, [&] {
      return job_->state == QueryState::kDone ||
             job_->state == QueryState::kFailed ||
             job_->state == QueryState::kCancelled;
    });
    if (job_->state == QueryState::kDone) return *job_->outcome;
    return job_->error;
  }

  /// Requests cooperative cancellation: a queued job is cancelled before it
  /// ever runs; a running job stops at its next serial boundary (collection
  /// tick / round edge) and Wait() returns Status::Cancelled. Idempotent;
  /// a no-op once the query already finished.
  void Cancel() {
    job_->cancel.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(job_->mu);
    if (job_->state == QueryState::kQueued) {
      job_->state = QueryState::kCancelled;
      job_->error = ::tcells::Status::Cancelled("query cancelled while queued");
      job_->cv.notify_all();
    }
  }

 private:
  friend class QueryScheduler;
  explicit QueryHandle(std::shared_ptr<internal::QueryJob> job)
      : job_(std::move(job)) {}

  std::shared_ptr<internal::QueryJob> job_;
};

}  // namespace tcells

#endif  // TCELLS_TCELLS_QUERY_HANDLE_H_
