// Generic single-table workload for property tests and benches: a table
//
//   T(gid INT64, grp STRING, val DOUBLE, cat INT64)
//
// with a controllable number of groups and skew, so that protocol-vs-oracle
// equivalence can be swept over (N_t, G, skew, protocol) combinations.
#ifndef TCELLS_WORKLOAD_GENERIC_H_
#define TCELLS_WORKLOAD_GENERIC_H_

#include <memory>

#include "common/result.h"
#include "protocol/fleet.h"
#include "storage/schema.h"

namespace tcells::workload {

struct GenericOptions {
  size_t num_tds = 50;
  size_t num_groups = 5;
  /// Zipf exponent of group popularity (0 = uniform).
  double group_skew = 0.0;
  /// Rows per TDS.
  size_t rows_per_tds = 1;
  uint64_t seed = 3;
};

storage::Schema GenericSchema();

/// Group label for index i ("G00", ...).
std::string GroupName(size_t i);

Status PopulateGenericDb(storage::Database* db, uint64_t tds_id,
                         const GenericOptions& opts, Rng* rng);

Result<std::unique_ptr<protocol::Fleet>> BuildGenericFleet(
    const GenericOptions& opts,
    std::shared_ptr<const crypto::KeyStore> keys,
    std::shared_ptr<const tds::Authority> authority,
    const tds::AccessPolicy& policy, tds::TdsOptions tds_options = {});

}  // namespace tcells::workload

#endif  // TCELLS_WORKLOAD_GENERIC_H_
