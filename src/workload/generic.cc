#include "workload/generic.h"

#include <cstdio>

namespace tcells::workload {

using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

Schema GenericSchema() {
  return Schema({{"gid", ValueType::kInt64},
                 {"grp", ValueType::kString},
                 {"val", ValueType::kDouble},
                 {"cat", ValueType::kInt64}});
}

std::string GroupName(size_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "G%02zu", i);
  return buf;
}

Status PopulateGenericDb(storage::Database* db, uint64_t tds_id,
                         const GenericOptions& opts, Rng* rng) {
  TCELLS_RETURN_IF_ERROR(db->CreateTable("T", GenericSchema()));
  TCELLS_ASSIGN_OR_RETURN(storage::Table * t, db->GetTable("T"));
  ZipfSampler group_sampler(opts.num_groups, opts.group_skew);
  for (size_t r = 0; r < opts.rows_per_tds; ++r) {
    size_t g = group_sampler.Sample(rng);
    TCELLS_RETURN_IF_ERROR(t->Insert(Tuple({
        Value::Int64(static_cast<int64_t>(g)),
        Value::String(GroupName(g)),
        Value::Double(rng->NextDouble() * 100.0),
        Value::Int64(rng->NextInRange(0, 9)),
    })));
  }
  (void)tds_id;
  return Status::OK();
}

Result<std::unique_ptr<protocol::Fleet>> BuildGenericFleet(
    const GenericOptions& opts,
    std::shared_ptr<const crypto::KeyStore> keys,
    std::shared_ptr<const tds::Authority> authority,
    const tds::AccessPolicy& policy, tds::TdsOptions tds_options) {
  Rng rng(opts.seed);
  auto fleet = std::make_unique<protocol::Fleet>();
  for (size_t i = 0; i < opts.num_tds; ++i) {
    auto server = std::make_unique<tds::TrustedDataServer>(
        /*id=*/i, keys, authority, policy, tds_options);
    TCELLS_RETURN_IF_ERROR(PopulateGenericDb(&server->db(), i, opts, &rng));
    fleet->Add(std::move(server));
  }
  return fleet;
}

}  // namespace tcells::workload
