#include "workload/smart_meter.h"

#include <cstdio>

namespace tcells::workload {

using storage::Column;
using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

Schema ConsumerSchema() {
  return Schema({{"cid", ValueType::kInt64},
                 {"district", ValueType::kString},
                 {"accomodation", ValueType::kString}});
}

Schema PowerSchema() {
  return Schema({{"cid", ValueType::kInt64},
                 {"cons", ValueType::kDouble},
                 {"hour", ValueType::kInt64}});
}

std::string DistrictName(size_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "D%03zu", i);
  return buf;
}

Status PopulateSmartMeterDb(storage::Database* db, uint64_t cid,
                            const SmartMeterOptions& opts, Rng* rng) {
  TCELLS_RETURN_IF_ERROR(db->CreateTable("Consumer", ConsumerSchema()));
  TCELLS_RETURN_IF_ERROR(db->CreateTable("Power", PowerSchema()));

  ZipfSampler district_sampler(opts.num_districts,
                               opts.district_skew);
  size_t district = district_sampler.Sample(rng);
  bool detached = rng->NextBool(opts.detached_fraction);

  TCELLS_ASSIGN_OR_RETURN(storage::Table * consumer, db->GetTable("Consumer"));
  TCELLS_RETURN_IF_ERROR(consumer->Insert(Tuple({
      Value::Int64(static_cast<int64_t>(cid)),
      Value::String(DistrictName(district)),
      Value::String(detached ? "detached house" : "apartment"),
  })));

  TCELLS_ASSIGN_OR_RETURN(storage::Table * power, db->GetTable("Power"));
  for (size_t r = 0; r < opts.readings_per_tds; ++r) {
    // Consumption in kWh: detached houses draw more on average.
    double base = detached ? 1.2 : 0.6;
    double cons = base + rng->NextDouble() * base;
    TCELLS_RETURN_IF_ERROR(power->Insert(Tuple({
        Value::Int64(static_cast<int64_t>(cid)),
        Value::Double(cons),
        Value::Int64(static_cast<int64_t>(r % 24)),
    })));
  }
  return Status::OK();
}

Result<std::unique_ptr<protocol::Fleet>> BuildSmartMeterFleet(
    const SmartMeterOptions& opts,
    std::shared_ptr<const crypto::KeyStore> keys,
    std::shared_ptr<const tds::Authority> authority,
    const tds::AccessPolicy& policy, tds::TdsOptions tds_options) {
  Rng rng(opts.seed);
  auto fleet = std::make_unique<protocol::Fleet>();
  for (size_t i = 0; i < opts.num_tds; ++i) {
    auto server = std::make_unique<tds::TrustedDataServer>(
        /*id=*/i, keys, authority, policy, tds_options);
    TCELLS_RETURN_IF_ERROR(
        PopulateSmartMeterDb(&server->db(), /*cid=*/i, opts, &rng));
    fleet->Add(std::move(server));
  }
  return fleet;
}

}  // namespace tcells::workload
