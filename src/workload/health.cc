#include "workload/health.h"

namespace tcells::workload {

using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

Schema PatientSchema() {
  return Schema({{"pid", ValueType::kInt64},
                 {"age", ValueType::kInt64},
                 {"city", ValueType::kString},
                 {"condition", ValueType::kString}});
}

Schema VitalsSchema() {
  return Schema({{"pid", ValueType::kInt64},
                 {"systolic", ValueType::kInt64},
                 {"weight", ValueType::kDouble}});
}

Status PopulateHealthDb(storage::Database* db, uint64_t pid,
                        const HealthOptions& opts, Rng* rng) {
  TCELLS_RETURN_IF_ERROR(db->CreateTable("Patient", PatientSchema()));
  TCELLS_RETURN_IF_ERROR(db->CreateTable("Vitals", VitalsSchema()));

  ZipfSampler condition_sampler(opts.conditions.size(), opts.condition_skew);
  const std::string& city =
      opts.cities[rng->NextBelow(opts.cities.size())];
  const std::string& condition =
      opts.conditions[condition_sampler.Sample(rng)];
  int64_t age = rng->NextInRange(1, 99);

  TCELLS_ASSIGN_OR_RETURN(storage::Table * patient, db->GetTable("Patient"));
  TCELLS_RETURN_IF_ERROR(patient->Insert(Tuple({
      Value::Int64(static_cast<int64_t>(pid)),
      Value::Int64(age),
      Value::String(city),
      Value::String(condition),
  })));

  TCELLS_ASSIGN_OR_RETURN(storage::Table * vitals, db->GetTable("Vitals"));
  TCELLS_RETURN_IF_ERROR(vitals->Insert(Tuple({
      Value::Int64(static_cast<int64_t>(pid)),
      Value::Int64(rng->NextInRange(95, 180)),
      Value::Double(45.0 + rng->NextDouble() * 70.0),
  })));
  return Status::OK();
}

Result<std::unique_ptr<protocol::Fleet>> BuildHealthFleet(
    const HealthOptions& opts,
    std::shared_ptr<const crypto::KeyStore> keys,
    std::shared_ptr<const tds::Authority> authority,
    const tds::AccessPolicy& policy, tds::TdsOptions tds_options) {
  Rng rng(opts.seed);
  auto fleet = std::make_unique<protocol::Fleet>();
  for (size_t i = 0; i < opts.num_tds; ++i) {
    auto server = std::make_unique<tds::TrustedDataServer>(
        /*id=*/i, keys, authority, policy, tds_options);
    TCELLS_RETURN_IF_ERROR(PopulateHealthDb(&server->db(), i, opts, &rng));
    fleet->Add(std::move(server));
  }
  return fleet;
}

}  // namespace tcells::workload
