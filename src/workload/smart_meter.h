// Smart-meter workload: the paper's motivating scenario (§2.3). Every TDS is
// a power meter holding the common schema
//
//   Consumer(cid INT64, district STRING, accomodation STRING)
//   Power(cid INT64, cons DOUBLE, hour INT64)
//
// ("accomodation" keeps the paper's spelling). The example query:
//
//   SELECT AVG(Cons) FROM Power P, Consumer C
//   WHERE C.accomodation = 'detached house' AND C.cid = P.cid
//   GROUP BY C.district HAVING COUNT(DISTINCT C.cid) > 100 SIZE 50000
#ifndef TCELLS_WORKLOAD_SMART_METER_H_
#define TCELLS_WORKLOAD_SMART_METER_H_

#include <memory>

#include "common/result.h"
#include "protocol/fleet.h"
#include "storage/schema.h"

namespace tcells::workload {

struct SmartMeterOptions {
  size_t num_tds = 100;
  size_t num_districts = 10;
  /// Zipf exponent of district popularity (0 = uniform).
  double district_skew = 0.0;
  /// Power readings per meter.
  size_t readings_per_tds = 1;
  /// Fraction of consumers living in a detached house.
  double detached_fraction = 0.5;
  uint64_t seed = 7;
};

storage::Schema ConsumerSchema();
storage::Schema PowerSchema();

/// District name for index i ("D000", "D001", ...).
std::string DistrictName(size_t i);

/// Populates one Database with a consumer + readings (used directly by unit
/// tests; fleet construction below uses it per TDS).
Status PopulateSmartMeterDb(storage::Database* db, uint64_t cid,
                            const SmartMeterOptions& opts, Rng* rng);

/// Builds a fleet of `opts.num_tds` power-meter TDSs sharing `keys`,
/// `authority` and `policy`.
Result<std::unique_ptr<protocol::Fleet>> BuildSmartMeterFleet(
    const SmartMeterOptions& opts,
    std::shared_ptr<const crypto::KeyStore> keys,
    std::shared_ptr<const tds::Authority> authority,
    const tds::AccessPolicy& policy, tds::TdsOptions tds_options = {});

}  // namespace tcells::workload

#endif  // TCELLS_WORKLOAD_SMART_METER_H_
