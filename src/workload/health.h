// PCEHR workload: Personally Controlled Electronic Health Records embedded
// in seldom-connected secure tokens (§2.3, second scenario). Schema:
//
//   Patient(pid INT64, age INT64, city STRING, condition STRING)
//   Vitals(pid INT64, systolic INT64, weight DOUBLE)
//
// Supports both identifying SFW queries ("alert people older than 80 in
// Memphis") and aggregate surveillance queries ("COUNT patients with flu per
// state"), with doctor-scoped access control.
#ifndef TCELLS_WORKLOAD_HEALTH_H_
#define TCELLS_WORKLOAD_HEALTH_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "protocol/fleet.h"
#include "storage/schema.h"

namespace tcells::workload {

struct HealthOptions {
  size_t num_tds = 100;
  std::vector<std::string> cities = {"Memphis", "Nashville", "Knoxville"};
  std::vector<std::string> conditions = {"flu", "asthma", "diabetes", "none"};
  /// Zipf exponent of condition prevalence.
  double condition_skew = 0.8;
  uint64_t seed = 11;
};

storage::Schema PatientSchema();
storage::Schema VitalsSchema();

Status PopulateHealthDb(storage::Database* db, uint64_t pid,
                        const HealthOptions& opts, Rng* rng);

Result<std::unique_ptr<protocol::Fleet>> BuildHealthFleet(
    const HealthOptions& opts,
    std::shared_ptr<const crypto::KeyStore> keys,
    std::shared_ptr<const tds::Authority> authority,
    const tds::AccessPolicy& policy, tds::TdsOptions tds_options = {});

}  // namespace tcells::workload

#endif  // TCELLS_WORKLOAD_HEALTH_H_
