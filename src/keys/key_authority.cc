#include "keys/key_authority.h"

#include <utility>

#include "crypto/hmac.h"

namespace tcells::keys {

Result<std::unique_ptr<KeyAuthority>> KeyAuthority::Create(const Bytes& master,
                                                           size_t num_devices,
                                                           uint64_t seed) {
  if (master.size() != 16) {
    return Status::InvalidArgument("authority master must be 16 bytes");
  }
  TCELLS_ASSIGN_OR_RETURN(
      crypto::BroadcastChannel channel,
      crypto::BroadcastChannel::Create(
          crypto::DeriveKey(master, "bc-tree"), num_devices));
  std::unique_ptr<KeyAuthority> authority(new KeyAuthority(
      master, std::move(channel), num_devices, seed));
  std::lock_guard<std::mutex> lock(authority->mu_);
  TCELLS_RETURN_IF_ERROR(authority->ResealLocked());
  return authority;
}

KeyAuthority::KeyAuthority(Bytes master, crypto::BroadcastChannel channel,
                           size_t num_devices, uint64_t seed)
    : master_(std::move(master)),
      channel_(std::move(channel)),
      num_devices_(num_devices),
      rng_(seed ^ 0x6b657973ULL) {}

Result<crypto::BroadcastDeviceKeys> KeyAuthority::EnrollDevice(
    uint64_t tds_id) const {
  return channel_.DeviceKeys(static_cast<size_t>(tds_id));
}

uint32_t KeyAuthority::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

bool KeyAuthority::IsRevoked(uint64_t tds_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return revoked_.count(static_cast<size_t>(tds_id)) > 0;
}

std::set<size_t> KeyAuthority::revoked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return revoked_;
}

Bytes KeyAuthority::CurrentBlock() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_block_;
}

Bytes KeyAuthority::EpochSecretLocked(uint32_t epoch) const {
  return DeriveEpochSecret(master_, epoch);
}

Status KeyAuthority::ResealLocked() {
  // Seal the trailing window of epoch secrets (oldest first) so a TDS that
  // missed up to kEpochWindow-1 rollovers can still serve queries posted
  // under those epochs.
  uint32_t oldest =
      epoch_ + 1 >= kEpochWindow ? epoch_ + 1 - kEpochWindow : 0;
  std::vector<Bytes> secrets;
  secrets.reserve(epoch_ - oldest + 1);
  for (uint32_t e = oldest; e <= epoch_; ++e) {
    secrets.push_back(EpochSecretLocked(e));
  }
  Bytes payload = EncodeEpochSecrets(epoch_, secrets);
  TCELLS_ASSIGN_OR_RETURN(crypto::BroadcastMessage message,
                          channel_.Encrypt(payload, revoked_, &rng_));
  EpochBlock block;
  block.epoch = epoch_;
  block.message = std::move(message);
  current_block_ = block.Encode();
  return Status::OK();
}

Status KeyAuthority::Revoke(const std::vector<uint64_t>& tds_ids) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t id : tds_ids) {
    if (id >= num_devices_) {
      return Status::InvalidArgument("revoked TDS id out of range");
    }
    revoked_.insert(static_cast<size_t>(id));
  }
  ++epoch_;
  return ResealLocked();
}

Status KeyAuthority::Rollover() {
  std::lock_guard<std::mutex> lock(mu_);
  ++epoch_;
  return ResealLocked();
}

ssi::QueryKeyPosting KeyAuthority::NewPosting(uint64_t query_id,
                                              Rng* rng) const {
  ssi::QueryKeyPosting posting;
  posting.query_id = query_id;
  posting.nonce = rng->NextBytes(ssi::QueryKeyPosting::kNonceSize);
  std::lock_guard<std::mutex> lock(mu_);
  posting.epoch = epoch_;
  return posting;
}

Result<std::shared_ptr<const crypto::KeyStore>> KeyAuthority::QuerierKeysFor(
    const ssi::QueryKeyPosting& posting) const {
  Bytes secret;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (posting.epoch > epoch_) {
      return Status::NotFound("posting epoch is in the future");
    }
    if (epoch_ - posting.epoch >= kEpochWindow) {
      return Status::NotFound("posting epoch fell out of the key window");
    }
    secret = EpochSecretLocked(posting.epoch);
  }
  return DeriveQueryKeys(secret, posting);
}

Status KeyAuthority::VerifyContribution(const ContributionTag& tag,
                                        uint64_t query_id,
                                        const Bytes& digest) const {
  Bytes secret;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tag.epoch != epoch_) {
      return Status::PermissionDenied("contribution tag epoch is stale");
    }
    if (revoked_.count(static_cast<size_t>(tag.tds_id)) > 0) {
      return Status::PermissionDenied("contributing TDS is revoked");
    }
    secret = EpochSecretLocked(epoch_);
  }
  Bytes expected =
      ContributionMac(DeriveContributionKey(secret, tag.tds_id), query_id,
                      digest);
  if (tag.mac.size() != expected.size() ||
      !crypto::ConstantTimeEqual(tag.mac.data(), expected.data(),
                                 expected.size())) {
    return Status::PermissionDenied("contribution tag failed to verify");
  }
  return Status::OK();
}

}  // namespace tcells::keys
