// KeyAuthority: the trusted key-distribution center of the dynamic key mode.
//
// The authority owns the 16-byte authority master secret, derives every
// epoch master secret from it, enrolls TDSes into the complete-subtree
// broadcast tree, and publishes one EpochBlock per epoch. Revocation bumps
// the epoch and reseals the block with the revoked set excluded from the
// cover — one broadcast revokes any number of devices at once.
//
// In the simulation the authority also plays the querier's key agent
// (NewPosting / QuerierKeysFor) and the contribution verifier
// (VerifyContribution); in a deployment those would live in the querier's
// secure device, holding the same epoch secrets.
//
// Thread-safety: all methods may be called concurrently (the engine's
// scheduler workers verify contributions while a campaign hook revokes).
#ifndef TCELLS_KEYS_KEY_AUTHORITY_H_
#define TCELLS_KEYS_KEY_AUTHORITY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "crypto/broadcast.h"
#include "crypto/keystore.h"
#include "keys/epoch.h"
#include "ssi/messages.h"

namespace tcells::keys {

class KeyAuthority {
 public:
  /// `master` keys the whole epoch-secret schedule and the broadcast tree;
  /// `num_devices` is the TDS id space (ids 0..num_devices-1); `seed` drives
  /// the authority's own entropy (broadcast payload keys and IVs), so equal
  /// (master, num_devices, seed) yields byte-identical blocks.
  static Result<std::unique_ptr<KeyAuthority>> Create(const Bytes& master,
                                                      size_t num_devices,
                                                      uint64_t seed);

  size_t num_devices() const { return num_devices_; }

  /// The burn-time key material of TDS `tds_id`.
  Result<crypto::BroadcastDeviceKeys> EnrollDevice(uint64_t tds_id) const;

  uint32_t current_epoch() const;
  bool IsRevoked(uint64_t tds_id) const;
  std::set<size_t> revoked() const;

  /// The latest published block, encoded for the SSI.
  Bytes CurrentBlock() const;

  /// Revokes `tds_ids` (idempotent per id) and rolls the epoch; the new
  /// CurrentBlock() excludes them from the cover.
  Status Revoke(const std::vector<uint64_t>& tds_ids);

  /// Rolls the epoch without changing the revoked set (periodic hygiene).
  Status Rollover();

  /// Querier side: draws the nonce of a fresh per-query posting from `rng`
  /// and stamps it with the current epoch.
  ssi::QueryKeyPosting NewPosting(uint64_t query_id, Rng* rng) const;

  /// Querier side: the session KeyStore of a posting. NotFound when the
  /// posting's epoch is outside the retained window.
  Result<std::shared_ptr<const crypto::KeyStore>> QuerierKeysFor(
      const ssi::QueryKeyPosting& posting) const;

  /// Admission check of one collection upload: the tag must carry the
  /// current epoch, come from a non-revoked TDS, and authenticate
  /// (query_id, digest) under that TDS's contribution key.
  /// PermissionDenied on any failure.
  Status VerifyContribution(const ContributionTag& tag, uint64_t query_id,
                            const Bytes& digest) const;

 private:
  KeyAuthority(Bytes master, crypto::BroadcastChannel channel,
               size_t num_devices, uint64_t seed);

  Bytes EpochSecretLocked(uint32_t epoch) const;
  Status ResealLocked();

  const Bytes master_;
  const crypto::BroadcastChannel channel_;
  const size_t num_devices_;

  mutable std::mutex mu_;
  Rng rng_;
  uint32_t epoch_ = 0;
  std::set<size_t> revoked_;
  Bytes current_block_;  ///< encoded EpochBlock of epoch_
};

}  // namespace tcells::keys

#endif  // TCELLS_KEYS_KEY_AUTHORITY_H_
