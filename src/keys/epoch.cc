#include "keys/epoch.h"

#include <string>

#include "common/hex.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace tcells::keys {

Bytes EpochBlock::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutU32(epoch);
  w.PutU32(static_cast<uint32_t>(message.header.size()));
  for (const auto& [node, wrap] : message.header) {
    w.PutU32(node);
    w.PutBytes(wrap);
  }
  w.PutBytes(message.body);
  return out;
}

Result<EpochBlock> EpochBlock::Decode(const Bytes& data) {
  ByteReader reader(data);
  EpochBlock block;
  TCELLS_ASSIGN_OR_RETURN(block.epoch, reader.GetU32());
  // Smallest header entry is node id (4) + empty wrap length (4).
  TCELLS_ASSIGN_OR_RETURN(uint32_t n, reader.GetCountU32(8));
  if (n == 0) return Status::Corruption("epoch block covers no subtree");
  block.message.header.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t node;
    TCELLS_ASSIGN_OR_RETURN(node, reader.GetU32());
    if (node == 0) return Status::Corruption("epoch block has node id 0");
    TCELLS_ASSIGN_OR_RETURN(Bytes wrap, reader.GetBytes());
    block.message.header.emplace_back(node, std::move(wrap));
  }
  TCELLS_ASSIGN_OR_RETURN(block.message.body, reader.GetBytes());
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after epoch block");
  }
  return block;
}

Bytes EncodeEpochSecrets(uint32_t inner_epoch,
                         const std::vector<Bytes>& secrets) {
  Bytes out;
  ByteWriter w(&out);
  w.PutU32(inner_epoch);
  w.PutU8(static_cast<uint8_t>(secrets.size()));
  for (const Bytes& secret : secrets) w.PutRaw(secret.data(), secret.size());
  return out;
}

const Bytes* EpochSecrets::SecretFor(uint32_t epoch) const {
  if (epoch > inner_epoch) return nullptr;
  uint32_t age = inner_epoch - epoch;
  if (age >= secrets.size()) return nullptr;
  return &secrets[secrets.size() - 1 - age];
}

Result<EpochSecrets> DecodeEpochSecrets(const Bytes& data) {
  ByteReader reader(data);
  EpochSecrets out;
  TCELLS_ASSIGN_OR_RETURN(out.inner_epoch, reader.GetU32());
  TCELLS_ASSIGN_OR_RETURN(uint8_t count, reader.GetU8());
  if (count == 0 || count > kEpochWindow) {
    return Status::Corruption("epoch secret window out of range");
  }
  if (count > out.inner_epoch + 1) {
    return Status::Corruption("epoch secret window predates epoch 0");
  }
  out.secrets.reserve(count);
  for (uint8_t i = 0; i < count; ++i) {
    TCELLS_ASSIGN_OR_RETURN(Bytes secret, reader.GetRaw(16));
    out.secrets.push_back(std::move(secret));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after epoch secrets");
  }
  return out;
}

Bytes DeriveEpochSecret(const Bytes& authority_master, uint32_t epoch) {
  return crypto::DeriveKey(authority_master, "ems-" + std::to_string(epoch));
}

Bytes DeriveContributionKey(const Bytes& epoch_secret, uint64_t tds_id) {
  return crypto::DeriveKey(epoch_secret, "auth-" + std::to_string(tds_id));
}

Result<std::shared_ptr<const crypto::KeyStore>> DeriveQueryKeys(
    const Bytes& epoch_secret, const ssi::QueryKeyPosting& posting) {
  if (posting.nonce.size() != ssi::QueryKeyPosting::kNonceSize) {
    return Status::InvalidArgument("key posting nonce must be 16 bytes");
  }
  std::string suffix =
      std::to_string(posting.query_id) + "-" + ToHex(posting.nonce);
  Bytes k1q = crypto::DeriveKey(epoch_secret, "qk1-" + suffix);
  Bytes k2q = crypto::DeriveKey(epoch_secret, "qk2-" + suffix);
  return crypto::KeyStore::Create(k1q, k2q);
}

Bytes ContributionDigest(const std::vector<ssi::EncryptedItem>& items) {
  crypto::Sha256 hasher;
  Bytes scratch;
  for (const ssi::EncryptedItem& item : items) {
    scratch.clear();
    item.EncodeTo(&scratch);
    hasher.Update(scratch);
  }
  auto digest = hasher.Finish();
  return Bytes(digest.begin(), digest.end());
}

Bytes ContributionMac(const Bytes& contribution_key, uint64_t query_id,
                      const Bytes& digest) {
  Bytes message;
  ByteWriter w(&message);
  w.PutU64(query_id);
  w.PutBytes(digest);
  auto mac = crypto::HmacSha256(contribution_key, message);
  return Bytes(mac.begin(), mac.end());
}

}  // namespace tcells::keys
