// Key epochs and the messages of the dynamic key-management subsystem
// (docs/KEYS.md).
//
// The static deployment model provisions one k1/k2 pair for the lifetime of
// the fleet. Dynamic key management replaces that with a key authority that
// publishes, per *epoch*, an EpochBlock: a complete-subtree broadcast
// (crypto/broadcast.h) whose sealed body carries the epoch master secrets of
// a short trailing window. Revocation is an epoch rollover that excludes the
// revoked TDS ids from the broadcast cover — a revoked TDS cannot open any
// block sealed after its revocation, so it is cut off from every later
// epoch's secrets in one message, regardless of how many devices are revoked
// at once.
//
// Per-query keys (To/Nguyen/Pucheral, arXiv 1509.03646): the querier draws a
// fresh nonce, publishes (epoch, query_id, nonce) in the QueryPost, and both
// sides independently derive
//
//   k1q = DeriveKey(ems(epoch), "qk1-<query_id>-<hex nonce>")
//   k2q = DeriveKey(ems(epoch), "qk2-<query_id>-<hex nonce>")
//
// from the epoch master secret ems(epoch). The SSI sees only the public
// posting; without ems it learns nothing about the session keys.
//
// Contribution authentication: each collection upload is accompanied by a
// ContributionTag — an HMAC under a per-TDS key derived from the *current*
// epoch secret — which the authority verifies before the upload is admitted.
// A revoked TDS is pinned to its pre-revocation epoch (it cannot refresh),
// so every contribution it makes after the revocation broadcast carries a
// stale epoch and is rejected.
#ifndef TCELLS_KEYS_EPOCH_H_
#define TCELLS_KEYS_EPOCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/broadcast.h"
#include "crypto/keystore.h"
#include "ssi/messages.h"

namespace tcells::keys {

/// How many trailing epoch secrets one EpochBlock carries. A TDS that was
/// offline for up to kEpochWindow-1 rollovers can still derive the session
/// keys of queries posted under those missed epochs; anything older requires
/// the query to be re-posted under a fresh epoch.
inline constexpr uint32_t kEpochWindow = 8;

/// One epoch's published key block: the broadcast-encrypted bundle of the
/// trailing epoch master secrets. Stored verbatim by the SSI (it cannot open
/// it) and fetched by TDSes on refresh.
struct EpochBlock {
  uint32_t epoch = 0;
  crypto::BroadcastMessage message;

  Bytes Encode() const;
  static Result<EpochBlock> Decode(const Bytes& data);
};

/// Codec of the sealed EpochBlock body: the epoch the block claims from the
/// inside plus the window of master secrets (oldest first, 16 bytes each,
/// covering epochs inner_epoch-secrets.size()+1 .. inner_epoch).
Bytes EncodeEpochSecrets(uint32_t inner_epoch,
                         const std::vector<Bytes>& secrets);

struct EpochSecrets {
  uint32_t inner_epoch = 0;
  std::vector<Bytes> secrets;  ///< oldest first; back() is inner_epoch's

  /// The secret of `epoch`, or null when outside the carried window.
  const Bytes* SecretFor(uint32_t epoch) const;
};
Result<EpochSecrets> DecodeEpochSecrets(const Bytes& data);

/// The authenticator accompanying one TDS collection upload. Never crosses
/// the SSI wire — the querier-side session verifies it before forwarding the
/// upload — but it is a fixed-format struct so campaigns can forge and
/// replay it.
struct ContributionTag {
  uint32_t epoch = 0;   ///< the epoch whose secret keyed the MAC
  uint64_t tds_id = 0;
  Bytes mac;            ///< HMAC-SHA-256 (32 bytes)
};

/// Derivation helpers shared by the authority and the TDS side; both sides
/// must agree on these labels byte-for-byte.
Bytes DeriveEpochSecret(const Bytes& authority_master, uint32_t epoch);
Bytes DeriveContributionKey(const Bytes& epoch_secret, uint64_t tds_id);
Result<std::shared_ptr<const crypto::KeyStore>> DeriveQueryKeys(
    const Bytes& epoch_secret, const ssi::QueryKeyPosting& posting);

/// Digest binding a contribution tag to the exact uploaded items.
Bytes ContributionDigest(const std::vector<ssi::EncryptedItem>& items);

/// MAC over (query_id, digest) under the per-TDS contribution key.
Bytes ContributionMac(const Bytes& contribution_key, uint64_t query_id,
                      const Bytes& digest);

}  // namespace tcells::keys

#endif  // TCELLS_KEYS_EPOCH_H_
