#include "keys/tds_keys.h"

#include <utility>

namespace tcells::keys {

TdsKeyState::TdsKeyState(uint64_t tds_id,
                         crypto::BroadcastDeviceKeys device_keys,
                         EpochBlockSource* source)
    : tds_id_(tds_id), device_keys_(std::move(device_keys)), source_(source) {}

Status TdsKeyState::RefreshLocked() {
  TCELLS_ASSIGN_OR_RETURN(Bytes encoded, source_->FetchLatestBlock(tds_id_));
  TCELLS_ASSIGN_OR_RETURN(EpochBlock block, EpochBlock::Decode(encoded));
  if (has_window_ && block.epoch <= window_.inner_epoch) {
    // Same or older than what we hold: nothing to adopt. A replayed stale
    // block can never roll a TDS backwards.
    return Status::OK();
  }
  TCELLS_ASSIGN_OR_RETURN(
      Bytes payload, crypto::BroadcastChannel::Decrypt(block.message,
                                                       device_keys_));
  TCELLS_ASSIGN_OR_RETURN(EpochSecrets window, DecodeEpochSecrets(payload));
  if (window.inner_epoch != block.epoch) {
    // The authenticated body disagrees with the public epoch label: someone
    // re-stamped an old block. Ignore it.
    return Status::Corruption("epoch block inner/outer epoch mismatch");
  }
  window_ = std::move(window);
  has_window_ = true;
  return Status::OK();
}

Status TdsKeyState::Refresh() {
  std::lock_guard<std::mutex> lock(mu_);
  return RefreshLocked();
}

Result<std::shared_ptr<const crypto::KeyStore>> TdsKeyState::KeysFor(
    const ssi::QueryKeyPosting& posting) {
  Bytes cache_key;
  posting.EncodeTo(&cache_key);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = session_cache_.find(cache_key);
  if (it != session_cache_.end()) return it->second;
  const Bytes* secret =
      has_window_ ? window_.SecretFor(posting.epoch) : nullptr;
  if (secret == nullptr) {
    // Window miss: maybe the fleet rolled forward (or this TDS never
    // refreshed). One refresh attempt; a failure here (revoked, forged
    // block, transport loss) leaves the old window in place.
    (void)RefreshLocked();
    secret = has_window_ ? window_.SecretFor(posting.epoch) : nullptr;
  }
  if (secret == nullptr) {
    return Status::NotFound("posting epoch unreachable for this TDS");
  }
  TCELLS_ASSIGN_OR_RETURN(std::shared_ptr<const crypto::KeyStore> keys,
                          DeriveQueryKeys(*secret, posting));
  session_cache_.emplace(std::move(cache_key), keys);
  return keys;
}

Result<ContributionTag> TdsKeyState::Tag(uint64_t query_id,
                                         const Bytes& digest) {
  std::lock_guard<std::mutex> lock(mu_);
  // Best-effort refresh: an honest TDS tags under the newest epoch it can
  // open; when the refresh fails (revoked / hostile block) the last good
  // window keeps the TDS serving and the authority decides admission.
  (void)RefreshLocked();
  if (!has_window_) {
    return Status::FailedPrecondition("TDS has no epoch window yet");
  }
  ContributionTag tag;
  tag.epoch = window_.inner_epoch;
  tag.tds_id = tds_id_;
  tag.mac = ContributionMac(
      DeriveContributionKey(window_.secrets.back(), tds_id_), query_id,
      digest);
  return tag;
}

Result<uint32_t> TdsKeyState::known_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!has_window_) return Status::NotFound("no epoch window adopted yet");
  return window_.inner_epoch;
}

}  // namespace tcells::keys
