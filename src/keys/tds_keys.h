// TdsKeyState: the per-TDS view of the dynamic key schedule.
//
// A TDS is burned with its broadcast device keys at enrollment and learns
// epoch secrets exclusively by fetching the latest EpochBlock from the SSI
// (through an EpochBlockSource) and opening it. The state never trusts a
// block blindly: a block that fails to decode, fails broadcast decryption
// (the TDS is revoked), fails body authentication (a forged rollover), or
// whose sealed inner epoch disagrees with its public epoch is ignored, and
// the TDS keeps operating on the last good window — so the worst a hostile
// block source can do is pin the TDS to a stale epoch, which the authority's
// admission check then surfaces as rejected contributions rather than wrong
// answers.
//
// Thread-safety: all methods may be called concurrently (collection serving
// runs on a thread pool).
#ifndef TCELLS_KEYS_TDS_KEYS_H_
#define TCELLS_KEYS_TDS_KEYS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/broadcast.h"
#include "crypto/keystore.h"
#include "keys/epoch.h"
#include "ssi/messages.h"

namespace tcells::keys {

/// Where a TDS fetches the latest published EpochBlock from. The engine
/// adapts its SSI client behind this so src/keys stays transport-agnostic.
class EpochBlockSource {
 public:
  virtual ~EpochBlockSource() = default;
  virtual Result<Bytes> FetchLatestBlock(uint64_t tds_id) = 0;
};

class TdsKeyState {
 public:
  /// `source` is borrowed and must outlive the state.
  TdsKeyState(uint64_t tds_id, crypto::BroadcastDeviceKeys device_keys,
              EpochBlockSource* source);

  uint64_t tds_id() const { return tds_id_; }

  /// Fetches the latest block and adopts its window when it is valid and
  /// newer than what the TDS already holds. Failures leave the state
  /// untouched: NotFound means the TDS is excluded from the cover (revoked),
  /// Corruption means the block was malformed or forged.
  Status Refresh();

  /// The session KeyStore of a query posting, refreshing once on a window
  /// miss. NotFound when the posting's epoch is unreachable for this TDS
  /// (revoked before the epoch, or the window rolled past it).
  Result<std::shared_ptr<const crypto::KeyStore>> KeysFor(
      const ssi::QueryKeyPosting& posting);

  /// Tags one collection upload. Refreshes first (best-effort) so an honest
  /// TDS always authenticates under the newest epoch it can reach; a revoked
  /// TDS is stuck with its pre-revocation epoch and the authority rejects
  /// the stale tag.
  Result<ContributionTag> Tag(uint64_t query_id, const Bytes& digest);

  /// The newest epoch this TDS has adopted; NotFound before the first
  /// successful Refresh.
  Result<uint32_t> known_epoch() const;

 private:
  Status RefreshLocked();

  const uint64_t tds_id_;
  const crypto::BroadcastDeviceKeys device_keys_;
  EpochBlockSource* const source_;

  mutable std::mutex mu_;
  bool has_window_ = false;
  EpochSecrets window_;  ///< last good window; back() is the newest secret
  /// Session-key cache keyed by the encoded posting, so every partition of
  /// one query derives once.
  std::map<Bytes, std::shared_ptr<const crypto::KeyStore>> session_cache_;
};

}  // namespace tcells::keys

#endif  // TCELLS_KEYS_TDS_KEYS_H_
