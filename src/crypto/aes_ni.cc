// Hardware AES backend (x86-64 AES-NI). This translation unit is the only
// one compiled with -maes; callers must gate on AesNiAvailable() before
// dispatching here. The key schedules are the ones Aes128::Create computed:
// the encryption schedule is the standard FIPS-197 one, and the decryption
// schedule is the equivalent-inverse-cipher form (round keys reversed with
// InvMixColumns folded in), which is exactly what AESDEC expects — so both
// backends share one schedule and produce bit-identical ciphertext.
//
// Blocks are processed four at a time where possible: AESENC/AESDEC have
// multi-cycle latency but single-cycle throughput, so keeping four
// independent blocks in flight hides the latency (this is what makes batched
// CTR keystream generation fast).
#include <cstddef>
#include <cstdint>

#if defined(__AES__)

#include <immintrin.h>
#include <wmmintrin.h>

namespace tcells::crypto::aesni {

namespace {

inline void LoadSchedule(const uint8_t* schedule, __m128i rk[11]) {
  for (int i = 0; i < 11; ++i) {
    rk[i] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(schedule + 16 * i));
  }
}

}  // namespace

void EncryptBlocks(const uint8_t schedule[176], const uint8_t* in,
                   uint8_t* out, size_t nblocks) {
  __m128i rk[11];
  LoadSchedule(schedule, rk);
  size_t b = 0;
  for (; b + 4 <= nblocks; b += 4) {
    const __m128i* src = reinterpret_cast<const __m128i*>(in + 16 * b);
    __m128i s0 = _mm_xor_si128(_mm_loadu_si128(src + 0), rk[0]);
    __m128i s1 = _mm_xor_si128(_mm_loadu_si128(src + 1), rk[0]);
    __m128i s2 = _mm_xor_si128(_mm_loadu_si128(src + 2), rk[0]);
    __m128i s3 = _mm_xor_si128(_mm_loadu_si128(src + 3), rk[0]);
    for (int r = 1; r < 10; ++r) {
      s0 = _mm_aesenc_si128(s0, rk[r]);
      s1 = _mm_aesenc_si128(s1, rk[r]);
      s2 = _mm_aesenc_si128(s2, rk[r]);
      s3 = _mm_aesenc_si128(s3, rk[r]);
    }
    __m128i* dst = reinterpret_cast<__m128i*>(out + 16 * b);
    _mm_storeu_si128(dst + 0, _mm_aesenclast_si128(s0, rk[10]));
    _mm_storeu_si128(dst + 1, _mm_aesenclast_si128(s1, rk[10]));
    _mm_storeu_si128(dst + 2, _mm_aesenclast_si128(s2, rk[10]));
    _mm_storeu_si128(dst + 3, _mm_aesenclast_si128(s3, rk[10]));
  }
  for (; b < nblocks; ++b) {
    __m128i s = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * b));
    s = _mm_xor_si128(s, rk[0]);
    for (int r = 1; r < 10; ++r) s = _mm_aesenc_si128(s, rk[r]);
    s = _mm_aesenclast_si128(s, rk[10]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * b), s);
  }
}

void DecryptBlocks(const uint8_t schedule[176], const uint8_t* in,
                   uint8_t* out, size_t nblocks) {
  __m128i rk[11];
  LoadSchedule(schedule, rk);
  size_t b = 0;
  for (; b + 4 <= nblocks; b += 4) {
    const __m128i* src = reinterpret_cast<const __m128i*>(in + 16 * b);
    __m128i s0 = _mm_xor_si128(_mm_loadu_si128(src + 0), rk[0]);
    __m128i s1 = _mm_xor_si128(_mm_loadu_si128(src + 1), rk[0]);
    __m128i s2 = _mm_xor_si128(_mm_loadu_si128(src + 2), rk[0]);
    __m128i s3 = _mm_xor_si128(_mm_loadu_si128(src + 3), rk[0]);
    for (int r = 1; r < 10; ++r) {
      s0 = _mm_aesdec_si128(s0, rk[r]);
      s1 = _mm_aesdec_si128(s1, rk[r]);
      s2 = _mm_aesdec_si128(s2, rk[r]);
      s3 = _mm_aesdec_si128(s3, rk[r]);
    }
    __m128i* dst = reinterpret_cast<__m128i*>(out + 16 * b);
    _mm_storeu_si128(dst + 0, _mm_aesdeclast_si128(s0, rk[10]));
    _mm_storeu_si128(dst + 1, _mm_aesdeclast_si128(s1, rk[10]));
    _mm_storeu_si128(dst + 2, _mm_aesdeclast_si128(s2, rk[10]));
    _mm_storeu_si128(dst + 3, _mm_aesdeclast_si128(s3, rk[10]));
  }
  for (; b < nblocks; ++b) {
    __m128i s = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * b));
    s = _mm_xor_si128(s, rk[0]);
    for (int r = 1; r < 10; ++r) s = _mm_aesdec_si128(s, rk[r]);
    s = _mm_aesdeclast_si128(s, rk[10]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * b), s);
  }
}

}  // namespace tcells::crypto::aesni

#endif  // defined(__AES__)
