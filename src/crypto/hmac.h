// HMAC-SHA-256 (RFC 2104) and helpers built on it: key derivation and the
// keyed bucket hash used by the ED_Hist protocol.
//
// Per-key work (deriving the ipad/opad blocks and absorbing them into the
// compression function) is factored into HmacState, which the encryption
// schemes precompute once at Create time: tagging a short message then costs
// two SHA-256 compression calls instead of four plus the pad derivation.
#ifndef TCELLS_CRYPTO_HMAC_H_
#define TCELLS_CRYPTO_HMAC_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace tcells::crypto {

/// Precomputed HMAC-SHA-256 key state: SHA-256 midstates with the ipad and
/// opad blocks already absorbed. Copy-cheap (a few hundred bytes) and
/// immutable after construction, so one instance can serve any number of
/// Mac() calls (including concurrently).
class HmacState {
 public:
  HmacState() = default;
  /// Any key length (keys longer than the SHA-256 block are hashed first).
  explicit HmacState(const Bytes& key);

  /// HMAC-SHA-256 of `data` under the precomputed key.
  std::array<uint8_t, 32> Mac(const uint8_t* data, size_t n) const;
  std::array<uint8_t, 32> Mac(const Bytes& data) const {
    return Mac(data.data(), data.size());
  }

 private:
  Sha256 inner_;  ///< midstate after absorbing key ^ ipad
  Sha256 outer_;  ///< midstate after absorbing key ^ opad
};

/// HMAC-SHA-256 of `data` under `key` (any key length). One-shot; prefer a
/// cached HmacState when the same key authenticates many messages.
std::array<uint8_t, 32> HmacSha256(const Bytes& key, const uint8_t* data,
                                   size_t n);
std::array<uint8_t, 32> HmacSha256(const Bytes& key, const Bytes& data);

/// Derives a 16-byte subkey from a master key and a label, so that the
/// encryption, MAC and hashing uses of k1/k2 are key-separated.
Bytes DeriveKey(const Bytes& master, std::string_view label);

/// Keyed 64-bit hash (HMAC truncated). ED_Hist's h(bucketId): reveals nothing
/// about the bucket's position in the A_G domain to a party without the key.
uint64_t KeyedHash64(const Bytes& key, const Bytes& data);

/// Branch-free byte comparison for authenticator tags: the run time depends
/// only on `n`, never on where the first mismatch is.
bool ConstantTimeEqual(const uint8_t* a, const uint8_t* b, size_t n);

}  // namespace tcells::crypto

#endif  // TCELLS_CRYPTO_HMAC_H_
