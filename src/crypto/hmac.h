// HMAC-SHA-256 (RFC 2104) and helpers built on it: key derivation and the
// keyed bucket hash used by the ED_Hist protocol.
#ifndef TCELLS_CRYPTO_HMAC_H_
#define TCELLS_CRYPTO_HMAC_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace tcells::crypto {

/// HMAC-SHA-256 of `data` under `key` (any key length).
std::array<uint8_t, 32> HmacSha256(const Bytes& key, const Bytes& data);

/// Derives a 16-byte subkey from a master key and a label, so that the
/// encryption, MAC and hashing uses of k1/k2 are key-separated.
Bytes DeriveKey(const Bytes& master, std::string_view label);

/// Keyed 64-bit hash (HMAC truncated). ED_Hist's h(bucketId): reveals nothing
/// about the bucket's position in the A_G domain to a party without the key.
uint64_t KeyedHash64(const Bytes& key, const Bytes& data);

}  // namespace tcells::crypto

#endif  // TCELLS_CRYPTO_HMAC_H_
