// Complete-subtree broadcast encryption (Naor–Naor–Lotspiech), the
// alternative key-distribution path of footnote 7: "a broadcast encryption
// scheme can also be used to securely exchange keys between TDSs and
// querier".
//
// N devices are the leaves of a binary tree; device i is burned with the
// keys of every node on its leaf-to-root path (log2 N + 1 keys). To send a
// payload to all non-revoked devices, the operator computes the minimal set
// of subtrees that covers exactly the non-revoked leaves and wraps a fresh
// payload key under each cover node's key. A revoked device holds no cover
// node key and learns nothing; every other device unwraps with a single
// lookup. The cover has at most r*log2(N/r) nodes for r revocations.
#ifndef TCELLS_CRYPTO_BROADCAST_H_
#define TCELLS_CRYPTO_BROADCAST_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"

namespace tcells::crypto {

/// One device's burned-in key material: (node id, node key) for its path.
struct BroadcastDeviceKeys {
  size_t device_index = 0;
  std::vector<std::pair<uint32_t, Bytes>> node_keys;
};

/// A broadcast: the wrapped payload key per cover node, plus the sealed body.
struct BroadcastMessage {
  std::vector<std::pair<uint32_t, Bytes>> header;  // node id -> wrap
  Bytes body;                                      // nDet_payloadkey(payload)
};

/// Operator-side state (the key tree is derived from a master secret, so
/// only the 16-byte master needs safekeeping).
class BroadcastChannel {
 public:
  /// Supports up to `num_devices` devices (tree padded to a power of two).
  static Result<BroadcastChannel> Create(const Bytes& master,
                                         size_t num_devices);

  size_t num_devices() const { return num_devices_; }
  size_t capacity() const { return capacity_; }

  /// The keys to burn into device `index`.
  Result<BroadcastDeviceKeys> DeviceKeys(size_t index) const;

  /// The cover node ids for a revocation set (exposed for analysis/tests).
  std::vector<uint32_t> Cover(const std::set<size_t>& revoked) const;

  /// Seals `payload` for every device not in `revoked`.
  Result<BroadcastMessage> Encrypt(const Bytes& payload,
                                   const std::set<size_t>& revoked,
                                   Rng* rng) const;

  /// Device side: unwraps with the burned-in keys. NotFound when the device
  /// is not covered (i.e. it was revoked).
  static Result<Bytes> Decrypt(const BroadcastMessage& message,
                               const BroadcastDeviceKeys& device);

 private:
  BroadcastChannel(Bytes master, size_t num_devices, size_t capacity)
      : master_(std::move(master)),
        num_devices_(num_devices),
        capacity_(capacity) {}

  Bytes NodeKey(uint32_t node) const;

  Bytes master_;
  size_t num_devices_;
  size_t capacity_;  // padded leaf count (power of two)
};

}  // namespace tcells::crypto

#endif  // TCELLS_CRYPTO_BROADCAST_H_
