// KeyStore: the cryptographic material shared by TDSs and the querier.
//
// Per the paper (§3.1): k1 is the symmetric key shared by the querier and
// the TDSs (queries in, final results out); k2 is shared among TDSs only and
// protects intermediate results flowing through the SSI. How these keys are
// provisioned (burn time, PKI, broadcast encryption) is context-dependent and
// out of scope — the store just holds them. The SSI never holds a KeyStore.
#ifndef TCELLS_CRYPTO_KEYSTORE_H_
#define TCELLS_CRYPTO_KEYSTORE_H_

#include <memory>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/encryption.h"

namespace tcells::crypto {

/// Immutable bundle of the schemes derived from k1 and k2. Shared (by
/// shared_ptr) across all simulated TDSs of one deployment.
class KeyStore {
 public:
  /// Builds every scheme from the two 16-byte master keys.
  static Result<std::shared_ptr<const KeyStore>> Create(const Bytes& k1,
                                                        const Bytes& k2);

  /// Convenience: derive k1/k2 from a deployment seed (test/simulation use).
  static std::shared_ptr<const KeyStore> CreateForTest(uint64_t seed);

  /// Querier <-> TDS channel (queries, final results).
  const NDetEnc& k1_ndet() const { return k1_ndet_; }
  /// TDS <-> TDS channel, probabilistic (S_Agg tuples, partial aggregates).
  const NDetEnc& k2_ndet() const { return k2_ndet_; }
  /// TDS <-> TDS channel, deterministic (Noise protocols' A_G, ED_Hist's
  /// second-phase group keys).
  const DetEnc& k2_det() const { return k2_det_; }
  /// Key for the ED_Hist bucket hash h(bucketId).
  const Bytes& k2_hash() const { return k2_hash_; }

 private:
  KeyStore(NDetEnc k1_ndet, NDetEnc k2_ndet, DetEnc k2_det, Bytes k2_hash);

  NDetEnc k1_ndet_;
  NDetEnc k2_ndet_;
  DetEnc k2_det_;
  Bytes k2_hash_;
};

}  // namespace tcells::crypto

#endif  // TCELLS_CRYPTO_KEYSTORE_H_
