#include "crypto/hmac.h"

#include <cstring>

namespace tcells::crypto {

HmacState::HmacState(const Bytes& key) {
  uint8_t block_key[Sha256::kBlockSize] = {0};
  if (key.size() > Sha256::kBlockSize) {
    auto digest = Sha256::Hash(key);
    std::memcpy(block_key, digest.data(), digest.size());
  } else {
    std::memcpy(block_key, key.data(), key.size());
  }
  uint8_t pad[Sha256::kBlockSize];
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) pad[i] = block_key[i] ^ 0x36;
  inner_.Update(pad, sizeof(pad));
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) pad[i] = block_key[i] ^ 0x5c;
  outer_.Update(pad, sizeof(pad));
}

std::array<uint8_t, 32> HmacState::Mac(const uint8_t* data, size_t n) const {
  Sha256 inner = inner_;
  inner.Update(data, n);
  auto inner_digest = inner.Finish();
  Sha256 outer = outer_;
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

std::array<uint8_t, 32> HmacSha256(const Bytes& key, const uint8_t* data,
                                   size_t n) {
  return HmacState(key).Mac(data, n);
}

std::array<uint8_t, 32> HmacSha256(const Bytes& key, const Bytes& data) {
  return HmacState(key).Mac(data.data(), data.size());
}

Bytes DeriveKey(const Bytes& master, std::string_view label) {
  auto digest = HmacSha256(
      master, reinterpret_cast<const uint8_t*>(label.data()), label.size());
  return Bytes(digest.begin(), digest.begin() + 16);
}

uint64_t KeyedHash64(const Bytes& key, const Bytes& data) {
  auto digest = HmacSha256(key, data);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(digest[i]) << (8 * i);
  return v;
}

bool ConstantTimeEqual(const uint8_t* a, const uint8_t* b, size_t n) {
  uint8_t diff = 0;
  for (size_t i = 0; i < n; ++i) diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  return diff == 0;
}

}  // namespace tcells::crypto
