#include "crypto/hmac.h"

#include <cstring>

#include "crypto/sha256.h"

namespace tcells::crypto {

std::array<uint8_t, 32> HmacSha256(const Bytes& key, const Bytes& data) {
  uint8_t block_key[Sha256::kBlockSize] = {0};
  if (key.size() > Sha256::kBlockSize) {
    auto digest = Sha256::Hash(key);
    std::memcpy(block_key, digest.data(), digest.size());
  } else {
    std::memcpy(block_key, key.data(), key.size());
  }
  uint8_t ipad[Sha256::kBlockSize];
  uint8_t opad[Sha256::kBlockSize];
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.Update(ipad, sizeof(ipad));
  inner.Update(data);
  auto inner_digest = inner.Finish();
  Sha256 outer;
  outer.Update(opad, sizeof(opad));
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

Bytes DeriveKey(const Bytes& master, std::string_view label) {
  Bytes label_bytes(label.begin(), label.end());
  auto digest = HmacSha256(master, label_bytes);
  return Bytes(digest.begin(), digest.begin() + 16);
}

uint64_t KeyedHash64(const Bytes& key, const Bytes& data) {
  auto digest = HmacSha256(key, data);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(digest[i]) << (8 * i);
  return v;
}

}  // namespace tcells::crypto
