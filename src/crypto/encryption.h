// The two symmetric encryption schemes the paper's protocols rely on:
//
//  * nDet_Enc — probabilistic (non-deterministic) encryption: AES-128-CTR
//    under a fresh random IV, plus an HMAC tag (encrypt-then-MAC). Several
//    encryptions of the same message yield different ciphertexts, so an
//    honest-but-curious SSI cannot run frequency-based attacks.
//
//  * Det_Enc — deterministic encryption: SIV construction, IV =
//    HMAC(k_mac, plaintext) truncated to 16 bytes, then AES-128-CTR. Equal
//    plaintexts yield equal ciphertexts (this is what lets SSI group tuples
//    by Det_Enc(A_G) in the Noise protocols), and the synthetic IV doubles
//    as an authenticator on decryption.
//
// Both schemes are key-separated from a single 16-byte master key via
// DeriveKey labels, and both precompute their HMAC key state at Create time
// so the per-tuple MAC costs two compression calls, not four.
//
// Every Encrypt/Decrypt has a span-in, buffer-out form that reuses the
// output vector's capacity — the hot paths (TDS seal/open of every tuple in
// every partition) call these with a per-partition scratch buffer and never
// allocate once the buffer has grown to the partition's item size.
#ifndef TCELLS_CRYPTO_ENCRYPTION_H_
#define TCELLS_CRYPTO_ENCRYPTION_H_

#include <cstdint>
#include <memory>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/hmac.h"

namespace tcells::crypto {

/// Probabilistic authenticated encryption (nDet_Enc in the paper).
/// Wire format: IV(16) || CTR-ciphertext(len) || tag(8).
class NDetEnc {
 public:
  static constexpr size_t kIvSize = 16;
  static constexpr size_t kTagSize = 8;
  /// Ciphertext expansion over the plaintext length.
  static constexpr size_t kOverhead = kIvSize + kTagSize;

  /// `master_key` must be 16 bytes; enc and mac subkeys are derived from it.
  static Result<NDetEnc> Create(const Bytes& master_key);

  /// Encrypts with a fresh IV drawn from `rng` (the simulation's reproducible
  /// entropy source standing in for the token's hardware TRNG).
  Bytes Encrypt(const Bytes& plaintext, Rng* rng) const;
  /// Same, into `out` (overwritten; capacity reused).
  void Encrypt(const uint8_t* plaintext, size_t n, Rng* rng, Bytes* out) const;

  /// Decrypts and verifies the tag; Corruption on any mismatch.
  Result<Bytes> Decrypt(const Bytes& ciphertext) const;
  /// Same, into `out` (overwritten; capacity reused). `out` is untouched on
  /// authentication failure.
  Status Decrypt(const uint8_t* ciphertext, size_t n, Bytes* out) const;
  /// Zero-allocation form: writes exactly `n - kOverhead` plaintext bytes to
  /// `out` (caller-sized, e.g. arena-backed). `out` may hold keystream XOR
  /// garbage if the tag check fails, so discard it on error.
  Status DecryptInto(const uint8_t* ciphertext, size_t n, uint8_t* out) const;

 private:
  NDetEnc(Aes128 aes, HmacState mac);

  Aes128 aes_;
  HmacState mac_;
};

/// Deterministic authenticated encryption (Det_Enc in the paper), SIV-style.
/// Wire format: SIV(16) || CTR-ciphertext(len).
class DetEnc {
 public:
  static constexpr size_t kIvSize = 16;
  static constexpr size_t kOverhead = kIvSize;

  static Result<DetEnc> Create(const Bytes& master_key);

  /// Same plaintext (under the same key) always produces the same bytes.
  Bytes Encrypt(const Bytes& plaintext) const;
  /// Same, into `out` (overwritten; capacity reused).
  void Encrypt(const uint8_t* plaintext, size_t n, Bytes* out) const;

  /// Decrypts and recomputes the SIV; Corruption on mismatch.
  Result<Bytes> Decrypt(const Bytes& ciphertext) const;
  /// Same, into `out` (overwritten; capacity reused). `out` holds the
  /// candidate plaintext even on SIV mismatch (it is cleared then).
  Status Decrypt(const uint8_t* ciphertext, size_t n, Bytes* out) const;

 private:
  DetEnc(Aes128 aes, HmacState mac);

  Aes128 aes_;
  HmacState mac_;
};

/// AES-CTR keystream XOR shared by both schemes (exposed for tests). The
/// keystream is generated in batches of blocks (see kCtrBatchBlocks) straight
/// into a stack buffer; output is identical to block-at-a-time CTR.
void CtrXor(const Aes128& aes, const uint8_t iv[16], const uint8_t* in,
            size_t n, uint8_t* out);

/// Number of keystream blocks CtrXor generates per cipher call.
inline constexpr size_t kCtrBatchBlocks = 8;

}  // namespace tcells::crypto

#endif  // TCELLS_CRYPTO_ENCRYPTION_H_
