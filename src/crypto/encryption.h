// The two symmetric encryption schemes the paper's protocols rely on:
//
//  * nDet_Enc — probabilistic (non-deterministic) encryption: AES-128-CTR
//    under a fresh random IV, plus an HMAC tag (encrypt-then-MAC). Several
//    encryptions of the same message yield different ciphertexts, so an
//    honest-but-curious SSI cannot run frequency-based attacks.
//
//  * Det_Enc — deterministic encryption: SIV construction, IV =
//    HMAC(k_mac, plaintext) truncated to 16 bytes, then AES-128-CTR. Equal
//    plaintexts yield equal ciphertexts (this is what lets SSI group tuples
//    by Det_Enc(A_G) in the Noise protocols), and the synthetic IV doubles
//    as an authenticator on decryption.
//
// Both schemes are key-separated from a single 16-byte master key via
// DeriveKey labels.
#ifndef TCELLS_CRYPTO_ENCRYPTION_H_
#define TCELLS_CRYPTO_ENCRYPTION_H_

#include <cstdint>
#include <memory>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "crypto/aes.h"

namespace tcells::crypto {

/// Probabilistic authenticated encryption (nDet_Enc in the paper).
/// Wire format: IV(16) || CTR-ciphertext(len) || tag(8).
class NDetEnc {
 public:
  static constexpr size_t kIvSize = 16;
  static constexpr size_t kTagSize = 8;
  /// Ciphertext expansion over the plaintext length.
  static constexpr size_t kOverhead = kIvSize + kTagSize;

  /// `master_key` must be 16 bytes; enc and mac subkeys are derived from it.
  static Result<NDetEnc> Create(const Bytes& master_key);

  /// Encrypts with a fresh IV drawn from `rng` (the simulation's reproducible
  /// entropy source standing in for the token's hardware TRNG).
  Bytes Encrypt(const Bytes& plaintext, Rng* rng) const;

  /// Decrypts and verifies the tag; Corruption on any mismatch.
  Result<Bytes> Decrypt(const Bytes& ciphertext) const;

 private:
  NDetEnc(Aes128 aes, Bytes mac_key);

  Aes128 aes_;
  Bytes mac_key_;
};

/// Deterministic authenticated encryption (Det_Enc in the paper), SIV-style.
/// Wire format: SIV(16) || CTR-ciphertext(len).
class DetEnc {
 public:
  static constexpr size_t kIvSize = 16;
  static constexpr size_t kOverhead = kIvSize;

  static Result<DetEnc> Create(const Bytes& master_key);

  /// Same plaintext (under the same key) always produces the same bytes.
  Bytes Encrypt(const Bytes& plaintext) const;

  /// Decrypts and recomputes the SIV; Corruption on mismatch.
  Result<Bytes> Decrypt(const Bytes& ciphertext) const;

 private:
  DetEnc(Aes128 aes, Bytes mac_key);

  Aes128 aes_;
  Bytes mac_key_;
};

/// AES-CTR keystream XOR shared by both schemes (exposed for tests).
void CtrXor(const Aes128& aes, const uint8_t iv[16], const uint8_t* in,
            size_t n, uint8_t* out);

}  // namespace tcells::crypto

#endif  // TCELLS_CRYPTO_ENCRYPTION_H_
