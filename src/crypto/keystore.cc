#include "crypto/keystore.h"

#include "common/rng.h"
#include "crypto/hmac.h"

namespace tcells::crypto {

KeyStore::KeyStore(NDetEnc k1_ndet, NDetEnc k2_ndet, DetEnc k2_det,
                   Bytes k2_hash)
    : k1_ndet_(std::move(k1_ndet)),
      k2_ndet_(std::move(k2_ndet)),
      k2_det_(std::move(k2_det)),
      k2_hash_(std::move(k2_hash)) {}

Result<std::shared_ptr<const KeyStore>> KeyStore::Create(const Bytes& k1,
                                                         const Bytes& k2) {
  TCELLS_ASSIGN_OR_RETURN(NDetEnc k1_ndet, NDetEnc::Create(k1));
  TCELLS_ASSIGN_OR_RETURN(NDetEnc k2_ndet, NDetEnc::Create(k2));
  TCELLS_ASSIGN_OR_RETURN(DetEnc k2_det, DetEnc::Create(k2));
  Bytes k2_hash = DeriveKey(k2, "bucket-hash");
  return std::shared_ptr<const KeyStore>(new KeyStore(
      std::move(k1_ndet), std::move(k2_ndet), std::move(k2_det),
      std::move(k2_hash)));
}

std::shared_ptr<const KeyStore> KeyStore::CreateForTest(uint64_t seed) {
  Rng rng(seed);
  Bytes k1 = rng.NextBytes(16);
  Bytes k2 = rng.NextBytes(16);
  auto result = Create(k1, k2);
  // Key sizes are correct by construction; Create cannot fail here.
  return std::move(result).ValueOrDie();
}

}  // namespace tcells::crypto
