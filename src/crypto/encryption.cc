#include "crypto/encryption.h"

#include <cstring>

#include "crypto/hmac.h"

namespace tcells::crypto {

void CtrXor(const Aes128& aes, const uint8_t iv[16], const uint8_t* in,
            size_t n, uint8_t* out) {
  uint8_t counter[16];
  std::memcpy(counter, iv, 16);
  uint8_t keystream[16];
  size_t pos = 0;
  while (pos < n) {
    std::memcpy(keystream, counter, 16);
    aes.EncryptBlock(keystream);
    size_t take = std::min<size_t>(16, n - pos);
    for (size_t i = 0; i < take; ++i) out[pos + i] = in[pos + i] ^ keystream[i];
    pos += take;
    // Increment the low 64 bits of the counter (big-endian within the block
    // tail); IV collisions across 2^64 blocks are out of scope.
    for (int i = 15; i >= 8; --i) {
      if (++counter[i] != 0) break;
    }
  }
}

// ---------------------------------------------------------------------------
// NDetEnc

NDetEnc::NDetEnc(Aes128 aes, Bytes mac_key)
    : aes_(aes), mac_key_(std::move(mac_key)) {}

Result<NDetEnc> NDetEnc::Create(const Bytes& master_key) {
  if (master_key.size() != Aes128::kKeySize) {
    return Status::InvalidArgument("master key must be 16 bytes");
  }
  Bytes enc_key = DeriveKey(master_key, "ndet-enc");
  Bytes mac_key = DeriveKey(master_key, "ndet-mac");
  TCELLS_ASSIGN_OR_RETURN(Aes128 aes, Aes128::Create(enc_key));
  return NDetEnc(aes, std::move(mac_key));
}

Bytes NDetEnc::Encrypt(const Bytes& plaintext, Rng* rng) const {
  Bytes out = rng->NextBytes(kIvSize);
  out.resize(kIvSize + plaintext.size());
  CtrXor(aes_, out.data(), plaintext.data(), plaintext.size(),
         out.data() + kIvSize);
  auto tag = HmacSha256(mac_key_, out);
  out.insert(out.end(), tag.begin(), tag.begin() + kTagSize);
  return out;
}

Result<Bytes> NDetEnc::Decrypt(const Bytes& ciphertext) const {
  if (ciphertext.size() < kOverhead) {
    return Status::Corruption("nDet ciphertext too short");
  }
  Bytes body(ciphertext.begin(), ciphertext.end() - kTagSize);
  auto tag = HmacSha256(mac_key_, body);
  if (!std::equal(tag.begin(), tag.begin() + kTagSize,
                  ciphertext.end() - kTagSize)) {
    return Status::Corruption("nDet tag mismatch");
  }
  Bytes plain(body.size() - kIvSize);
  CtrXor(aes_, body.data(), body.data() + kIvSize, plain.size(), plain.data());
  return plain;
}

// ---------------------------------------------------------------------------
// DetEnc

DetEnc::DetEnc(Aes128 aes, Bytes mac_key)
    : aes_(aes), mac_key_(std::move(mac_key)) {}

Result<DetEnc> DetEnc::Create(const Bytes& master_key) {
  if (master_key.size() != Aes128::kKeySize) {
    return Status::InvalidArgument("master key must be 16 bytes");
  }
  Bytes enc_key = DeriveKey(master_key, "det-enc");
  Bytes mac_key = DeriveKey(master_key, "det-siv");
  TCELLS_ASSIGN_OR_RETURN(Aes128 aes, Aes128::Create(enc_key));
  return DetEnc(aes, std::move(mac_key));
}

Bytes DetEnc::Encrypt(const Bytes& plaintext) const {
  auto siv_full = HmacSha256(mac_key_, plaintext);
  Bytes out(kIvSize + plaintext.size());
  std::memcpy(out.data(), siv_full.data(), kIvSize);
  CtrXor(aes_, out.data(), plaintext.data(), plaintext.size(),
         out.data() + kIvSize);
  return out;
}

Result<Bytes> DetEnc::Decrypt(const Bytes& ciphertext) const {
  if (ciphertext.size() < kOverhead) {
    return Status::Corruption("Det ciphertext too short");
  }
  Bytes plain(ciphertext.size() - kIvSize);
  CtrXor(aes_, ciphertext.data(), ciphertext.data() + kIvSize, plain.size(),
         plain.data());
  auto siv_full = HmacSha256(mac_key_, plain);
  if (!std::equal(siv_full.begin(), siv_full.begin() + kIvSize,
                  ciphertext.begin())) {
    return Status::Corruption("Det SIV mismatch");
  }
  return plain;
}

}  // namespace tcells::crypto
