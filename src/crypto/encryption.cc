#include "crypto/encryption.h"

#include <cstring>

namespace tcells::crypto {

namespace {

// Big-endian increment of the low 64 bits of a counter block (the tail
// wraps within the low half; IV collisions across 2^64 blocks are out of
// scope).
inline void IncrementCounter(uint8_t counter[16]) {
  for (int i = 15; i >= 8; --i) {
    if (++counter[i] != 0) break;
  }
}

}  // namespace

void CtrXor(const Aes128& aes, const uint8_t iv[16], const uint8_t* in,
            size_t n, uint8_t* out) {
  uint8_t counters[16 * kCtrBatchBlocks];
  uint8_t keystream[16 * kCtrBatchBlocks];
  uint8_t counter[16];
  std::memcpy(counter, iv, 16);
  size_t pos = 0;
  while (pos < n) {
    const size_t blocks =
        std::min(kCtrBatchBlocks, (n - pos + 15) / 16);
    for (size_t b = 0; b < blocks; ++b) {
      std::memcpy(counters + 16 * b, counter, 16);
      IncrementCounter(counter);
    }
    aes.EncryptBlocks(counters, keystream, blocks);
    const size_t take = std::min(n - pos, blocks * 16);
    for (size_t i = 0; i < take; ++i) out[pos + i] = in[pos + i] ^ keystream[i];
    pos += take;
  }
}

// ---------------------------------------------------------------------------
// NDetEnc

NDetEnc::NDetEnc(Aes128 aes, HmacState mac)
    : aes_(aes), mac_(std::move(mac)) {}

Result<NDetEnc> NDetEnc::Create(const Bytes& master_key) {
  if (master_key.size() != Aes128::kKeySize) {
    return Status::InvalidArgument("master key must be 16 bytes");
  }
  Bytes enc_key = DeriveKey(master_key, "ndet-enc");
  Bytes mac_key = DeriveKey(master_key, "ndet-mac");
  TCELLS_ASSIGN_OR_RETURN(Aes128 aes, Aes128::Create(enc_key));
  return NDetEnc(aes, HmacState(mac_key));
}

void NDetEnc::Encrypt(const uint8_t* plaintext, size_t n, Rng* rng,
                      Bytes* out) const {
  out->resize(kIvSize + n + kTagSize);
  rng->FillBytes(out->data(), kIvSize);
  CtrXor(aes_, out->data(), plaintext, n, out->data() + kIvSize);
  auto tag = mac_.Mac(out->data(), kIvSize + n);
  std::memcpy(out->data() + kIvSize + n, tag.data(), kTagSize);
}

Bytes NDetEnc::Encrypt(const Bytes& plaintext, Rng* rng) const {
  Bytes out;
  Encrypt(plaintext.data(), plaintext.size(), rng, &out);
  return out;
}

Status NDetEnc::Decrypt(const uint8_t* ciphertext, size_t n,
                        Bytes* out) const {
  if (n < kOverhead) {
    return Status::Corruption("nDet ciphertext too short");
  }
  // MAC straight over the IV || ciphertext prefix — no body copy.
  const size_t body_size = n - kTagSize;
  auto tag = mac_.Mac(ciphertext, body_size);
  if (!ConstantTimeEqual(tag.data(), ciphertext + body_size, kTagSize)) {
    return Status::Corruption("nDet tag mismatch");
  }
  out->resize(body_size - kIvSize);
  CtrXor(aes_, ciphertext, ciphertext + kIvSize, out->size(), out->data());
  return Status::OK();
}

Status NDetEnc::DecryptInto(const uint8_t* ciphertext, size_t n,
                            uint8_t* out) const {
  if (n < kOverhead) {
    return Status::Corruption("nDet ciphertext too short");
  }
  const size_t body_size = n - kTagSize;
  auto tag = mac_.Mac(ciphertext, body_size);
  if (!ConstantTimeEqual(tag.data(), ciphertext + body_size, kTagSize)) {
    return Status::Corruption("nDet tag mismatch");
  }
  CtrXor(aes_, ciphertext, ciphertext + kIvSize, body_size - kIvSize, out);
  return Status::OK();
}

Result<Bytes> NDetEnc::Decrypt(const Bytes& ciphertext) const {
  Bytes plain;
  TCELLS_RETURN_IF_ERROR(Decrypt(ciphertext.data(), ciphertext.size(), &plain));
  return plain;
}

// ---------------------------------------------------------------------------
// DetEnc

DetEnc::DetEnc(Aes128 aes, HmacState mac)
    : aes_(aes), mac_(std::move(mac)) {}

Result<DetEnc> DetEnc::Create(const Bytes& master_key) {
  if (master_key.size() != Aes128::kKeySize) {
    return Status::InvalidArgument("master key must be 16 bytes");
  }
  Bytes enc_key = DeriveKey(master_key, "det-enc");
  Bytes mac_key = DeriveKey(master_key, "det-siv");
  TCELLS_ASSIGN_OR_RETURN(Aes128 aes, Aes128::Create(enc_key));
  return DetEnc(aes, HmacState(mac_key));
}

void DetEnc::Encrypt(const uint8_t* plaintext, size_t n, Bytes* out) const {
  auto siv_full = mac_.Mac(plaintext, n);
  out->resize(kIvSize + n);
  std::memcpy(out->data(), siv_full.data(), kIvSize);
  CtrXor(aes_, out->data(), plaintext, n, out->data() + kIvSize);
}

Bytes DetEnc::Encrypt(const Bytes& plaintext) const {
  Bytes out;
  Encrypt(plaintext.data(), plaintext.size(), &out);
  return out;
}

Status DetEnc::Decrypt(const uint8_t* ciphertext, size_t n,
                       Bytes* out) const {
  if (n < kOverhead) {
    return Status::Corruption("Det ciphertext too short");
  }
  out->resize(n - kIvSize);
  CtrXor(aes_, ciphertext, ciphertext + kIvSize, out->size(), out->data());
  auto siv_full = mac_.Mac(out->data(), out->size());
  if (!ConstantTimeEqual(siv_full.data(), ciphertext, kIvSize)) {
    out->clear();
    return Status::Corruption("Det SIV mismatch");
  }
  return Status::OK();
}

Result<Bytes> DetEnc::Decrypt(const Bytes& ciphertext) const {
  Bytes plain;
  TCELLS_RETURN_IF_ERROR(Decrypt(ciphertext.data(), ciphertext.size(), &plain));
  return plain;
}

}  // namespace tcells::crypto
