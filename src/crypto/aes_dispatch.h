// Runtime backend selection for the AES-128 kernel.
//
// Two implementations produce bit-identical output:
//
//  * kPortable — 32-bit T-table cipher (rijndael-alg-fst style) with an
//    equivalent-inverse-cipher key schedule precomputed at Aes128::Create.
//  * kAesNi    — hardware AES instructions (AESENC/AESDEC), compiled in a
//    separate translation unit with -maes and selected only when CPUID
//    reports support.
//
// The active backend is resolved once per process: the environment variable
// TCELLS_FORCE_PORTABLE_AES (set to anything but "0") pins the portable
// path; otherwise the hardware path is used when available. Tests and
// benchmarks can override at runtime with ForceAesBackend so both paths stay
// exercised on every machine.
#ifndef TCELLS_CRYPTO_AES_DISPATCH_H_
#define TCELLS_CRYPTO_AES_DISPATCH_H_

#include <optional>

namespace tcells::crypto {

enum class AesBackend {
  kPortable,
  kAesNi,
};

/// True iff the CPU supports the AES instruction set *and* this binary was
/// built with the AES-NI translation unit (x86-64 only).
bool AesNiAvailable();

/// The backend every Aes128 call currently dispatches to.
AesBackend ActiveAesBackend();

/// Overrides the backend for this process; nullopt restores the default
/// resolution (env var, then CPUID). Forcing kAesNi on a machine without
/// hardware support is ignored. Not thread-safe with concurrent crypto
/// calls; intended for test/bench setup code.
void ForceAesBackend(std::optional<AesBackend> backend);

/// "portable" or "aesni".
const char* AesBackendName(AesBackend backend);

}  // namespace tcells::crypto

#endif  // TCELLS_CRYPTO_AES_DISPATCH_H_
