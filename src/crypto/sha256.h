// SHA-256 (FIPS 180-4), implemented from scratch. Used by HMAC, the
// deterministic-encryption synthetic IV, and the equi-depth histogram bucket
// hash.
#ifndef TCELLS_CRYPTO_SHA256_H_
#define TCELLS_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace tcells::crypto {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  /// Absorbs more input.
  void Update(const uint8_t* data, size_t n);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }

  /// Finalizes and returns the 32-byte digest. The hasher must not be used
  /// again afterwards.
  std::array<uint8_t, kDigestSize> Finish();

  /// One-shot convenience.
  static std::array<uint8_t, kDigestSize> Hash(const Bytes& data);

 private:
  void ProcessBlock(const uint8_t block[kBlockSize]);

  uint32_t h_[8];
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

}  // namespace tcells::crypto

#endif  // TCELLS_CRYPTO_SHA256_H_
