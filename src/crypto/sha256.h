// SHA-256 (FIPS 180-4), implemented from scratch. Used by HMAC, the
// deterministic-encryption synthetic IV, and the equi-depth histogram bucket
// hash.
//
// Two compression backends produce bit-identical digests: the portable
// schedule in sha256.cc and the x86 SHA-extension kernel in sha256_ni.cc
// (built with -msha in its own translation unit, selected only when CPUID
// reports SHA + SSE4.1 support — the same split as the AES backends, see
// aes_dispatch.h). TCELLS_FORCE_PORTABLE_SHA pins the portable path.
#ifndef TCELLS_CRYPTO_SHA256_H_
#define TCELLS_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace tcells::crypto {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  /// Absorbs more input.
  void Update(const uint8_t* data, size_t n);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }

  /// Finalizes and returns the 32-byte digest. The hasher must not be used
  /// again afterwards.
  std::array<uint8_t, kDigestSize> Finish();

  /// One-shot convenience.
  static std::array<uint8_t, kDigestSize> Hash(const Bytes& data);

 private:
  /// Compresses `nblocks` consecutive 64-byte blocks, dispatching to the
  /// active backend once per call (so bulk input pays one dispatch).
  void ProcessBlocks(const uint8_t* data, size_t nblocks);
  void ProcessOneBlockPortable(const uint8_t block[kBlockSize]);

  uint32_t h_[8];
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

/// True iff the CPU supports the x86 SHA extensions *and* this binary was
/// built with the SHA-NI translation unit.
bool ShaNiAvailable();

/// Pins the portable compression for this process (true), or restores the
/// default resolution (false: env var, then CPUID). Not thread-safe with
/// concurrent hashing; intended for test/bench setup code.
void ForcePortableSha256(bool force);

/// "portable" or "shani" — the backend Sha256 currently compresses with.
const char* ActiveSha256BackendName();

}  // namespace tcells::crypto

#endif  // TCELLS_CRYPTO_SHA256_H_
