// Key provisioning (paper footnote 7): how k1 and k2 reach the TDSs.
//
// "In a homogeneous context these keys or a seed allowing to generate a
// sequence of keys can be installed at burn time. In an open context, a PKI
// infrastructure could be used [...] Alternatively, a broadcast encryption
// scheme can also be used."
//
// This module implements the practical smartcard pattern: every device
// carries a unique burn-time key; the deployment operator wraps the current
// epoch's (k1, k2) individually per device with authenticated encryption.
// Keys can be rotated: each epoch's pair derives from a master seed, old
// wraps keep working for their epoch, and devices can be moved to the newest
// epoch at any connection.
#ifndef TCELLS_CRYPTO_PROVISIONING_H_
#define TCELLS_CRYPTO_PROVISIONING_H_

#include <cstdint>
#include <memory>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "crypto/keystore.h"

namespace tcells::crypto {

/// A provisioned bundle as the device sees it after unwrapping.
struct ProvisionedKeys {
  uint32_t epoch = 0;
  std::shared_ptr<const KeyStore> keys;
};

/// Operator side: derives per-epoch deployment keys from a master seed and
/// wraps them for individual devices.
class KeyProvisioner {
 public:
  /// `master_seed` must be 16 bytes (the deployment's root secret).
  static Result<KeyProvisioner> Create(const Bytes& master_seed);

  /// Current epoch number (starts at 0).
  uint32_t epoch() const { return epoch_; }

  /// Advances to the next key epoch (k1/k2 change; §3.1 "these keys may
  /// change over time").
  void Rotate() { ++epoch_; }

  /// The KeyStore of the current epoch (what the querier uses).
  Result<std::shared_ptr<const KeyStore>> CurrentKeys() const;

  /// (k1, k2) of an arbitrary epoch, for verification/tests.
  Bytes K1ForEpoch(uint32_t epoch) const;
  Bytes K2ForEpoch(uint32_t epoch) const;

  /// Wraps the current epoch's keys for the device with this burn-time key.
  /// The wrap is authenticated: only that device can open it, and tampering
  /// is detected.
  Bytes WrapFor(const Bytes& device_key, Rng* rng) const;

  /// Device side: unwraps a bundle with the burn-time key.
  static Result<ProvisionedKeys> Unwrap(const Bytes& device_key,
                                        const Bytes& wrapped);

 private:
  explicit KeyProvisioner(Bytes master_seed)
      : master_seed_(std::move(master_seed)) {}

  Bytes master_seed_;
  uint32_t epoch_ = 0;
};

}  // namespace tcells::crypto

#endif  // TCELLS_CRYPTO_PROVISIONING_H_
