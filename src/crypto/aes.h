// AES-128 block cipher, implemented from scratch (the TDS hardware in the
// paper has an AES coprocessor; here the software implementation stands in
// for it and the device model accounts for its cost separately).
//
// This is a straightforward table-free implementation: S-box lookups plus
// xtime-based MixColumns. It is not constant-time; in this repository it only
// ever runs inside the simulated trusted enclave.
#ifndef TCELLS_CRYPTO_AES_H_
#define TCELLS_CRYPTO_AES_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"

namespace tcells::crypto {

/// AES-128: 16-byte key, 16-byte blocks, 10 rounds.
class Aes128 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 16;

  /// Expands the key schedule. `key` must be exactly kKeySize bytes.
  static Result<Aes128> Create(const Bytes& key);

  /// Encrypts one 16-byte block in place.
  void EncryptBlock(uint8_t block[kBlockSize]) const;

  /// Decrypts one 16-byte block in place.
  void DecryptBlock(uint8_t block[kBlockSize]) const;

 private:
  Aes128() = default;

  // 11 round keys of 16 bytes.
  std::array<uint8_t, 176> round_keys_{};
};

}  // namespace tcells::crypto

#endif  // TCELLS_CRYPTO_AES_H_
