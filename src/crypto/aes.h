// AES-128 block cipher (the TDS hardware in the paper has an AES
// coprocessor; here the software implementation stands in for it and the
// device model accounts for its cost separately).
//
// The kernel is built for throughput — every tuple in every protocol passes
// through it, so it dominates the cost model (§6.1):
//
//  * the portable path is a 32-bit T-table cipher; decryption uses the
//    equivalent inverse cipher with InvMixColumns folded into round keys
//    precomputed at Create time (no per-byte GF(2^8) multiplies per block);
//  * on x86-64 with AES-NI the same key schedules drive AESENC/AESDEC,
//    selected at runtime (see aes_dispatch.h);
//  * EncryptBlocks/DecryptBlocks process batches so CTR mode can generate
//    keystream several blocks per call and the hardware path can keep
//    multiple blocks in flight.
//
// It is not constant-time on the portable path; in this repository it only
// ever runs inside the simulated trusted enclave.
#ifndef TCELLS_CRYPTO_AES_H_
#define TCELLS_CRYPTO_AES_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"

namespace tcells::crypto {

/// AES-128: 16-byte key, 16-byte blocks, 10 rounds.
class Aes128 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 16;
  /// 11 round keys of 16 bytes.
  static constexpr size_t kScheduleBytes = 176;

  /// Expands the encryption key schedule and the equivalent-inverse-cipher
  /// decryption schedule. `key` must be exactly kKeySize bytes.
  static Result<Aes128> Create(const Bytes& key);

  /// Encrypts one 16-byte block in place.
  void EncryptBlock(uint8_t block[kBlockSize]) const;

  /// Decrypts one 16-byte block in place.
  void DecryptBlock(uint8_t block[kBlockSize]) const;

  /// Encrypts `nblocks` consecutive 16-byte blocks from `in` to `out`.
  /// `in` and `out` may be the same buffer but must not partially overlap.
  void EncryptBlocks(const uint8_t* in, uint8_t* out, size_t nblocks) const;

  /// Decrypts `nblocks` consecutive 16-byte blocks from `in` to `out`.
  void DecryptBlocks(const uint8_t* in, uint8_t* out, size_t nblocks) const;

  /// Round keys in FIPS-197 byte order (AddRoundKey order for encryption).
  const uint8_t* enc_schedule() const { return enc_keys_.data(); }
  /// Equivalent-inverse-cipher round keys, first-applied first: schedule[0]
  /// is the last encryption round key, the middle nine are InvMixColumns of
  /// encryption round keys 9..1, schedule[160] is the original key.
  const uint8_t* dec_schedule() const { return dec_keys_.data(); }

 private:
  Aes128() = default;

  std::array<uint8_t, kScheduleBytes> enc_keys_{};
  std::array<uint8_t, kScheduleBytes> dec_keys_{};
  // The same schedules packed as big-endian 32-bit words for the T-table
  // path, so no per-block repacking is needed.
  std::array<uint32_t, 44> enc_words_{};
  std::array<uint32_t, 44> dec_words_{};
};

}  // namespace tcells::crypto

#endif  // TCELLS_CRYPTO_AES_H_
