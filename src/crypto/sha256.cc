#include "crypto/sha256.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define TCELLS_SHA_X86_64 1
#endif

namespace tcells::crypto {

#if TCELLS_HAVE_SHANI_TU
/// Hardware kernel (sha256_ni.cc, built with -msha).
void Sha256NiProcessBlocks(uint32_t state[8], const uint8_t* data,
                           size_t nblocks);
#endif

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

bool CpuHasShaNi() {
#if defined(TCELLS_SHA_X86_64)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  // SHA extensions: leaf 7 subleaf 0, EBX bit 29. The kernel also uses
  // SSSE3/SSE4.1 shuffles (leaf 1, ECX bits 9 and 19).
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  const bool sse = (ecx & (1u << 9)) != 0 && (ecx & (1u << 19)) != 0;
  if (!sse) return false;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  return (ebx & (1u << 29)) != 0;
#else
  return false;
#endif
}

bool ResolveUseShaNi() {
  const char* force = std::getenv("TCELLS_FORCE_PORTABLE_SHA");
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    return false;
  }
  return ShaNiAvailable();
}

// 0 = not yet resolved, 1 = portable, 2 = sha-ni.
std::atomic<int> g_sha_backend{0};

bool UseShaNi() {
  int v = g_sha_backend.load(std::memory_order_acquire);
  if (v == 0) {
    v = ResolveUseShaNi() ? 2 : 1;
    g_sha_backend.store(v, std::memory_order_release);
  }
  return v == 2;
}

}  // namespace

bool ShaNiAvailable() {
#if TCELLS_HAVE_SHANI_TU
  static const bool supported = CpuHasShaNi();
  return supported;
#else
  return false;
#endif
}

void ForcePortableSha256(bool force) {
  g_sha_backend.store(force ? 1 : 0, std::memory_order_release);
}

const char* ActiveSha256BackendName() {
  return UseShaNi() ? "shani" : "portable";
}

Sha256::Sha256() {
  h_[0] = 0x6a09e667; h_[1] = 0xbb67ae85; h_[2] = 0x3c6ef372; h_[3] = 0xa54ff53a;
  h_[4] = 0x510e527f; h_[5] = 0x9b05688c; h_[6] = 0x1f83d9ab; h_[7] = 0x5be0cd19;
}

void Sha256::ProcessBlocks(const uint8_t* data, size_t nblocks) {
#if TCELLS_HAVE_SHANI_TU
  if (UseShaNi()) {
    Sha256NiProcessBlocks(h_, data, nblocks);
    return;
  }
#endif
  for (size_t b = 0; b < nblocks; ++b, data += kBlockSize) {
    ProcessOneBlockPortable(data);
  }
}

void Sha256::ProcessOneBlockPortable(const uint8_t block[kBlockSize]) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = static_cast<uint32_t>(block[4 * i]) << 24 |
           static_cast<uint32_t>(block[4 * i + 1]) << 16 |
           static_cast<uint32_t>(block[4 * i + 2]) << 8 |
           static_cast<uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int i = 0; i < 64; ++i) {
    uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    uint32_t ch = (e & f) ^ (~e & g);
    uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
    uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint32_t temp2 = s0 + maj;
    h = g; g = f; f = e; e = d + temp1;
    d = c; c = b; b = a; a = temp1 + temp2;
  }
  h_[0] += a; h_[1] += b; h_[2] += c; h_[3] += d;
  h_[4] += e; h_[5] += f; h_[6] += g; h_[7] += h;
}

void Sha256::Update(const uint8_t* data, size_t n) {
  total_len_ += n;
  if (buffer_len_ > 0) {
    size_t take = std::min(n, kBlockSize - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    n -= take;
    if (buffer_len_ == kBlockSize) {
      ProcessBlocks(buffer_, 1);
      buffer_len_ = 0;
    }
  }
  if (n >= kBlockSize) {
    const size_t nblocks = n / kBlockSize;
    ProcessBlocks(data, nblocks);
    data += nblocks * kBlockSize;
    n -= nblocks * kBlockSize;
  }
  if (n > 0) {
    std::memcpy(buffer_, data, n);
    buffer_len_ = n;
  }
}

std::array<uint8_t, Sha256::kDigestSize> Sha256::Finish() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffer_len_ != 56) Update(&zero, 1);
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (8 * (7 - i)));
  }
  // Bypass Update for the length to keep total_len_ bookkeeping simple.
  std::memcpy(buffer_ + 56, len_bytes, 8);
  ProcessBlocks(buffer_, 1);
  std::array<uint8_t, kDigestSize> digest;
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<uint8_t>(h_[i] >> 24);
    digest[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
    digest[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
    digest[4 * i + 3] = static_cast<uint8_t>(h_[i]);
  }
  return digest;
}

std::array<uint8_t, Sha256::kDigestSize> Sha256::Hash(const Bytes& data) {
  Sha256 hasher;
  hasher.Update(data);
  return hasher.Finish();
}

}  // namespace tcells::crypto
