#include "crypto/aes.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "crypto/aes_dispatch.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define TCELLS_AES_X86_64 1
#endif

namespace tcells::crypto {

#if TCELLS_HAVE_AESNI_TU
// Implemented in aes_ni.cc (compiled with -maes).
namespace aesni {
void EncryptBlocks(const uint8_t schedule[Aes128::kScheduleBytes],
                   const uint8_t* in, uint8_t* out, size_t nblocks);
void DecryptBlocks(const uint8_t schedule[Aes128::kScheduleBytes],
                   const uint8_t* in, uint8_t* out, size_t nblocks);
}  // namespace aesni
#endif

namespace {

constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

constexpr uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                               0x20, 0x40, 0x80, 0x1b, 0x36};

constexpr uint8_t Xtime(uint8_t x) {
  return static_cast<uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

constexpr uint8_t Mul(uint8_t x, uint8_t y) {
  uint8_t r = 0;
  while (y) {
    if (y & 1) r ^= x;
    x = Xtime(x);
    y >>= 1;
  }
  return r;
}

constexpr uint32_t RotR(uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

// T-tables (generated at compile time): Te0[x] is MixColumns applied to the
// column (S[x], 0, 0, 0) packed big-endian, so one lookup covers SubBytes +
// MixColumns for one byte; Te1..Te3 are byte rotations of Te0. Td0 is the
// decryption analogue built on InvSbox and the InvMixColumns matrix.
struct AesTables {
  uint32_t te0[256];
  uint32_t td0[256];
};

constexpr AesTables MakeTables() {
  AesTables t{};
  for (int i = 0; i < 256; ++i) {
    const uint8_t s = kSbox[i];
    t.te0[i] = (static_cast<uint32_t>(Xtime(s)) << 24) |
               (static_cast<uint32_t>(s) << 16) |
               (static_cast<uint32_t>(s) << 8) |
               static_cast<uint32_t>(static_cast<uint8_t>(Xtime(s) ^ s));
    const uint8_t is = kInvSbox[i];
    t.td0[i] = (static_cast<uint32_t>(Mul(is, 14)) << 24) |
               (static_cast<uint32_t>(Mul(is, 9)) << 16) |
               (static_cast<uint32_t>(Mul(is, 13)) << 8) |
               static_cast<uint32_t>(Mul(is, 11));
  }
  return t;
}

constexpr AesTables kT = MakeTables();

inline uint32_t LoadBe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) << 24 | static_cast<uint32_t>(p[1]) << 16 |
         static_cast<uint32_t>(p[2]) << 8 | static_cast<uint32_t>(p[3]);
}

inline void StoreBe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

void PortableEncryptBlock(const uint32_t rk[44], const uint8_t in[16],
                          uint8_t out[16]) {
  uint32_t s0 = LoadBe32(in) ^ rk[0];
  uint32_t s1 = LoadBe32(in + 4) ^ rk[1];
  uint32_t s2 = LoadBe32(in + 8) ^ rk[2];
  uint32_t s3 = LoadBe32(in + 12) ^ rk[3];
  for (int round = 1; round < 10; ++round) {
    const uint32_t* k = rk + 4 * round;
    uint32_t t0 = kT.te0[s0 >> 24] ^ RotR(kT.te0[(s1 >> 16) & 0xff], 8) ^
                  RotR(kT.te0[(s2 >> 8) & 0xff], 16) ^
                  RotR(kT.te0[s3 & 0xff], 24) ^ k[0];
    uint32_t t1 = kT.te0[s1 >> 24] ^ RotR(kT.te0[(s2 >> 16) & 0xff], 8) ^
                  RotR(kT.te0[(s3 >> 8) & 0xff], 16) ^
                  RotR(kT.te0[s0 & 0xff], 24) ^ k[1];
    uint32_t t2 = kT.te0[s2 >> 24] ^ RotR(kT.te0[(s3 >> 16) & 0xff], 8) ^
                  RotR(kT.te0[(s0 >> 8) & 0xff], 16) ^
                  RotR(kT.te0[s1 & 0xff], 24) ^ k[2];
    uint32_t t3 = kT.te0[s3 >> 24] ^ RotR(kT.te0[(s0 >> 16) & 0xff], 8) ^
                  RotR(kT.te0[(s1 >> 8) & 0xff], 16) ^
                  RotR(kT.te0[s2 & 0xff], 24) ^ k[3];
    s0 = t0; s1 = t1; s2 = t2; s3 = t3;
  }
  const uint32_t* k = rk + 40;
  uint32_t o0 = (static_cast<uint32_t>(kSbox[s0 >> 24]) << 24 |
                 static_cast<uint32_t>(kSbox[(s1 >> 16) & 0xff]) << 16 |
                 static_cast<uint32_t>(kSbox[(s2 >> 8) & 0xff]) << 8 |
                 static_cast<uint32_t>(kSbox[s3 & 0xff])) ^ k[0];
  uint32_t o1 = (static_cast<uint32_t>(kSbox[s1 >> 24]) << 24 |
                 static_cast<uint32_t>(kSbox[(s2 >> 16) & 0xff]) << 16 |
                 static_cast<uint32_t>(kSbox[(s3 >> 8) & 0xff]) << 8 |
                 static_cast<uint32_t>(kSbox[s0 & 0xff])) ^ k[1];
  uint32_t o2 = (static_cast<uint32_t>(kSbox[s2 >> 24]) << 24 |
                 static_cast<uint32_t>(kSbox[(s3 >> 16) & 0xff]) << 16 |
                 static_cast<uint32_t>(kSbox[(s0 >> 8) & 0xff]) << 8 |
                 static_cast<uint32_t>(kSbox[s1 & 0xff])) ^ k[2];
  uint32_t o3 = (static_cast<uint32_t>(kSbox[s3 >> 24]) << 24 |
                 static_cast<uint32_t>(kSbox[(s0 >> 16) & 0xff]) << 16 |
                 static_cast<uint32_t>(kSbox[(s1 >> 8) & 0xff]) << 8 |
                 static_cast<uint32_t>(kSbox[s2 & 0xff])) ^ k[3];
  StoreBe32(out, o0);
  StoreBe32(out + 4, o1);
  StoreBe32(out + 8, o2);
  StoreBe32(out + 12, o3);
}

// Equivalent inverse cipher: the round keys already carry InvMixColumns, so
// each round is four Td0 lookups per word — no GF(2^8) multiply loops.
void PortableDecryptBlock(const uint32_t rk[44], const uint8_t in[16],
                          uint8_t out[16]) {
  uint32_t s0 = LoadBe32(in) ^ rk[0];
  uint32_t s1 = LoadBe32(in + 4) ^ rk[1];
  uint32_t s2 = LoadBe32(in + 8) ^ rk[2];
  uint32_t s3 = LoadBe32(in + 12) ^ rk[3];
  for (int round = 1; round < 10; ++round) {
    const uint32_t* k = rk + 4 * round;
    uint32_t t0 = kT.td0[s0 >> 24] ^ RotR(kT.td0[(s3 >> 16) & 0xff], 8) ^
                  RotR(kT.td0[(s2 >> 8) & 0xff], 16) ^
                  RotR(kT.td0[s1 & 0xff], 24) ^ k[0];
    uint32_t t1 = kT.td0[s1 >> 24] ^ RotR(kT.td0[(s0 >> 16) & 0xff], 8) ^
                  RotR(kT.td0[(s3 >> 8) & 0xff], 16) ^
                  RotR(kT.td0[s2 & 0xff], 24) ^ k[1];
    uint32_t t2 = kT.td0[s2 >> 24] ^ RotR(kT.td0[(s1 >> 16) & 0xff], 8) ^
                  RotR(kT.td0[(s0 >> 8) & 0xff], 16) ^
                  RotR(kT.td0[s3 & 0xff], 24) ^ k[2];
    uint32_t t3 = kT.td0[s3 >> 24] ^ RotR(kT.td0[(s2 >> 16) & 0xff], 8) ^
                  RotR(kT.td0[(s1 >> 8) & 0xff], 16) ^
                  RotR(kT.td0[s0 & 0xff], 24) ^ k[3];
    s0 = t0; s1 = t1; s2 = t2; s3 = t3;
  }
  const uint32_t* k = rk + 40;
  uint32_t o0 = (static_cast<uint32_t>(kInvSbox[s0 >> 24]) << 24 |
                 static_cast<uint32_t>(kInvSbox[(s3 >> 16) & 0xff]) << 16 |
                 static_cast<uint32_t>(kInvSbox[(s2 >> 8) & 0xff]) << 8 |
                 static_cast<uint32_t>(kInvSbox[s1 & 0xff])) ^ k[0];
  uint32_t o1 = (static_cast<uint32_t>(kInvSbox[s1 >> 24]) << 24 |
                 static_cast<uint32_t>(kInvSbox[(s0 >> 16) & 0xff]) << 16 |
                 static_cast<uint32_t>(kInvSbox[(s3 >> 8) & 0xff]) << 8 |
                 static_cast<uint32_t>(kInvSbox[s2 & 0xff])) ^ k[1];
  uint32_t o2 = (static_cast<uint32_t>(kInvSbox[s2 >> 24]) << 24 |
                 static_cast<uint32_t>(kInvSbox[(s1 >> 16) & 0xff]) << 16 |
                 static_cast<uint32_t>(kInvSbox[(s0 >> 8) & 0xff]) << 8 |
                 static_cast<uint32_t>(kInvSbox[s3 & 0xff])) ^ k[2];
  uint32_t o3 = (static_cast<uint32_t>(kInvSbox[s3 >> 24]) << 24 |
                 static_cast<uint32_t>(kInvSbox[(s2 >> 16) & 0xff]) << 16 |
                 static_cast<uint32_t>(kInvSbox[(s1 >> 8) & 0xff]) << 8 |
                 static_cast<uint32_t>(kInvSbox[s0 & 0xff])) ^ k[3];
  StoreBe32(out, o0);
  StoreBe32(out + 4, o1);
  StoreBe32(out + 8, o2);
  StoreBe32(out + 12, o3);
}

// ---------------------------------------------------------------------------
// Backend resolution

bool CpuHasAesNi() {
#if defined(TCELLS_AES_X86_64)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & (1u << 25)) != 0;
#else
  return false;
#endif
}

AesBackend ResolveDefaultBackend() {
  const char* force = std::getenv("TCELLS_FORCE_PORTABLE_AES");
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    return AesBackend::kPortable;
  }
  return AesNiAvailable() ? AesBackend::kAesNi : AesBackend::kPortable;
}

// kPortable/kAesNi encoded as 1/2 so 0 can mean "not yet resolved".
std::atomic<int> g_backend{0};

}  // namespace

bool AesNiAvailable() {
#if TCELLS_HAVE_AESNI_TU
  static const bool supported = CpuHasAesNi();
  return supported;
#else
  return false;
#endif
}

AesBackend ActiveAesBackend() {
  int v = g_backend.load(std::memory_order_acquire);
  if (v == 0) {
    v = ResolveDefaultBackend() == AesBackend::kAesNi ? 2 : 1;
    g_backend.store(v, std::memory_order_release);
  }
  return v == 2 ? AesBackend::kAesNi : AesBackend::kPortable;
}

void ForceAesBackend(std::optional<AesBackend> backend) {
  if (!backend.has_value()) {
    g_backend.store(0, std::memory_order_release);
    return;
  }
  AesBackend b = *backend;
  if (b == AesBackend::kAesNi && !AesNiAvailable()) b = AesBackend::kPortable;
  g_backend.store(b == AesBackend::kAesNi ? 2 : 1, std::memory_order_release);
}

const char* AesBackendName(AesBackend backend) {
  return backend == AesBackend::kAesNi ? "aesni" : "portable";
}

// ---------------------------------------------------------------------------
// Aes128

Result<Aes128> Aes128::Create(const Bytes& key) {
  if (key.size() != kKeySize) {
    return Status::InvalidArgument("AES-128 key must be 16 bytes");
  }
  Aes128 aes;
  uint8_t* rk = aes.enc_keys_.data();
  std::memcpy(rk, key.data(), kKeySize);
  for (int i = 4; i < 44; ++i) {
    uint8_t temp[4];
    std::memcpy(temp, rk + 4 * (i - 1), 4);
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon.
      uint8_t t = temp[0];
      temp[0] = static_cast<uint8_t>(kSbox[temp[1]] ^ kRcon[i / 4]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t];
    }
    for (int k = 0; k < 4; ++k) {
      rk[4 * i + k] = rk[4 * (i - 4) + k] ^ temp[k];
    }
  }

  // Equivalent-inverse-cipher schedule: reverse the round-key order and fold
  // InvMixColumns into the nine middle keys, once per key instead of per
  // block (this is also exactly the AESIMC transform the hardware path
  // expects).
  uint8_t* dk = aes.dec_keys_.data();
  std::memcpy(dk, rk + 160, 16);
  std::memcpy(dk + 160, rk, 16);
  for (int round = 1; round < 10; ++round) {
    const uint8_t* src = rk + 16 * (10 - round);
    uint8_t* dst = dk + 16 * round;
    for (int c = 0; c < 4; ++c) {
      const uint8_t a0 = src[4 * c], a1 = src[4 * c + 1];
      const uint8_t a2 = src[4 * c + 2], a3 = src[4 * c + 3];
      dst[4 * c] = static_cast<uint8_t>(Mul(a0, 14) ^ Mul(a1, 11) ^
                                        Mul(a2, 13) ^ Mul(a3, 9));
      dst[4 * c + 1] = static_cast<uint8_t>(Mul(a0, 9) ^ Mul(a1, 14) ^
                                            Mul(a2, 11) ^ Mul(a3, 13));
      dst[4 * c + 2] = static_cast<uint8_t>(Mul(a0, 13) ^ Mul(a1, 9) ^
                                            Mul(a2, 14) ^ Mul(a3, 11));
      dst[4 * c + 3] = static_cast<uint8_t>(Mul(a0, 11) ^ Mul(a1, 13) ^
                                            Mul(a2, 9) ^ Mul(a3, 14));
    }
  }

  for (int i = 0; i < 44; ++i) {
    aes.enc_words_[i] = LoadBe32(rk + 4 * i);
    aes.dec_words_[i] = LoadBe32(dk + 4 * i);
  }
  return aes;
}

void Aes128::EncryptBlock(uint8_t block[kBlockSize]) const {
  EncryptBlocks(block, block, 1);
}

void Aes128::DecryptBlock(uint8_t block[kBlockSize]) const {
  DecryptBlocks(block, block, 1);
}

void Aes128::EncryptBlocks(const uint8_t* in, uint8_t* out,
                           size_t nblocks) const {
#if TCELLS_HAVE_AESNI_TU
  if (ActiveAesBackend() == AesBackend::kAesNi) {
    aesni::EncryptBlocks(enc_keys_.data(), in, out, nblocks);
    return;
  }
#endif
  for (size_t b = 0; b < nblocks; ++b) {
    PortableEncryptBlock(enc_words_.data(), in + 16 * b, out + 16 * b);
  }
}

void Aes128::DecryptBlocks(const uint8_t* in, uint8_t* out,
                           size_t nblocks) const {
#if TCELLS_HAVE_AESNI_TU
  if (ActiveAesBackend() == AesBackend::kAesNi) {
    aesni::DecryptBlocks(dec_keys_.data(), in, out, nblocks);
    return;
  }
#endif
  for (size_t b = 0; b < nblocks; ++b) {
    PortableDecryptBlock(dec_words_.data(), in + 16 * b, out + 16 * b);
  }
}

}  // namespace tcells::crypto
