#include "crypto/provisioning.h"

#include "crypto/hmac.h"

namespace tcells::crypto {

Result<KeyProvisioner> KeyProvisioner::Create(const Bytes& master_seed) {
  if (master_seed.size() != 16) {
    return Status::InvalidArgument("master seed must be 16 bytes");
  }
  return KeyProvisioner(master_seed);
}

Bytes KeyProvisioner::K1ForEpoch(uint32_t epoch) const {
  return DeriveKey(master_seed_, "k1-epoch-" + std::to_string(epoch));
}

Bytes KeyProvisioner::K2ForEpoch(uint32_t epoch) const {
  return DeriveKey(master_seed_, "k2-epoch-" + std::to_string(epoch));
}

Result<std::shared_ptr<const KeyStore>> KeyProvisioner::CurrentKeys() const {
  return KeyStore::Create(K1ForEpoch(epoch_), K2ForEpoch(epoch_));
}

Bytes KeyProvisioner::WrapFor(const Bytes& device_key, Rng* rng) const {
  Bytes plain;
  ByteWriter w(&plain);
  w.PutU32(epoch_);
  w.PutBytes(K1ForEpoch(epoch_));
  w.PutBytes(K2ForEpoch(epoch_));
  Bytes wrap_key = DeriveKey(device_key, "provision-wrap");
  // Key sizes are fixed; Create cannot fail.
  auto sealer = NDetEnc::Create(wrap_key).ValueOrDie();
  return sealer.Encrypt(plain, rng);
}

Result<ProvisionedKeys> KeyProvisioner::Unwrap(const Bytes& device_key,
                                               const Bytes& wrapped) {
  Bytes wrap_key = DeriveKey(device_key, "provision-wrap");
  TCELLS_ASSIGN_OR_RETURN(NDetEnc sealer, NDetEnc::Create(wrap_key));
  TCELLS_ASSIGN_OR_RETURN(Bytes plain, sealer.Decrypt(wrapped));
  ByteReader r(plain);
  ProvisionedKeys out;
  TCELLS_ASSIGN_OR_RETURN(out.epoch, r.GetU32());
  TCELLS_ASSIGN_OR_RETURN(Bytes k1, r.GetBytes());
  TCELLS_ASSIGN_OR_RETURN(Bytes k2, r.GetBytes());
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in key wrap");
  TCELLS_ASSIGN_OR_RETURN(out.keys, KeyStore::Create(k1, k2));
  return out;
}

}  // namespace tcells::crypto
