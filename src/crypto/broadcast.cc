#include "crypto/broadcast.h"

#include <string>

#include "crypto/encryption.h"
#include "crypto/hmac.h"

namespace tcells::crypto {

Result<BroadcastChannel> BroadcastChannel::Create(const Bytes& master,
                                                  size_t num_devices) {
  if (master.size() != 16) {
    return Status::InvalidArgument("broadcast master must be 16 bytes");
  }
  if (num_devices == 0) {
    return Status::InvalidArgument("need at least one device");
  }
  // Heap numbering stores node ids in uint32 and the leaves occupy
  // capacity .. 2*capacity-1, so the padded leaf count must stay <= 2^31 or
  // the leaf ids wrap around and distinct devices would share keys.
  if (num_devices > (size_t{1} << 31)) {
    return Status::InvalidArgument("broadcast tree capped at 2^31 devices");
  }
  size_t capacity = 1;
  while (capacity < num_devices) capacity *= 2;
  return BroadcastChannel(master, num_devices, capacity);
}

Bytes BroadcastChannel::NodeKey(uint32_t node) const {
  return DeriveKey(master_, "bc-node-" + std::to_string(node));
}

Result<BroadcastDeviceKeys> BroadcastChannel::DeviceKeys(size_t index) const {
  if (index >= num_devices_) {
    return Status::InvalidArgument("device index out of range");
  }
  BroadcastDeviceKeys out;
  out.device_index = index;
  // Heap numbering: root = 1, leaves = capacity .. 2*capacity-1.
  for (uint32_t node = static_cast<uint32_t>(capacity_ + index); node >= 1;
       node /= 2) {
    out.node_keys.emplace_back(node, NodeKey(node));
    if (node == 1) break;
  }
  return out;
}

std::vector<uint32_t> BroadcastChannel::Cover(
    const std::set<size_t>& revoked) const {
  // A node is "dirty" if its subtree contains a revoked leaf or a padding
  // leaf (padding leaves beyond num_devices_ must never be covered — their
  // keys exist but no real device holds them, so covering them is harmless
  // for security yet would waste header space; treating them as revoked
  // keeps the cover tight and the invariants uniform).
  std::set<uint32_t> dirty;
  auto mark = [&](size_t leaf_index) {
    for (uint32_t node = static_cast<uint32_t>(capacity_ + leaf_index);
         node >= 1; node /= 2) {
      dirty.insert(node);
      if (node == 1) break;
    }
  };
  for (size_t r : revoked) {
    if (r < num_devices_) mark(r);
  }
  for (size_t pad = num_devices_; pad < capacity_; ++pad) mark(pad);

  if (dirty.empty()) return {1};  // nobody revoked: the root covers everyone

  // Cover = maximal clean subtrees = clean children of dirty nodes.
  std::vector<uint32_t> cover;
  for (uint32_t node : dirty) {
    if (node >= capacity_) continue;  // leaves have no children
    for (uint32_t child : {2 * node, 2 * node + 1}) {
      if (!dirty.count(child)) cover.push_back(child);
    }
  }
  return cover;
}

Result<BroadcastMessage> BroadcastChannel::Encrypt(
    const Bytes& payload, const std::set<size_t>& revoked, Rng* rng) const {
  Bytes payload_key = rng->NextBytes(16);
  TCELLS_ASSIGN_OR_RETURN(NDetEnc body_sealer, NDetEnc::Create(payload_key));
  BroadcastMessage message;
  message.body = body_sealer.Encrypt(payload, rng);
  for (uint32_t node : Cover(revoked)) {
    TCELLS_ASSIGN_OR_RETURN(NDetEnc wrapper, NDetEnc::Create(NodeKey(node)));
    message.header.emplace_back(node, wrapper.Encrypt(payload_key, rng));
  }
  return message;
}

Result<Bytes> BroadcastChannel::Decrypt(const BroadcastMessage& message,
                                        const BroadcastDeviceKeys& device) {
  for (const auto& [node, wrap] : message.header) {
    for (const auto& [held_node, key] : device.node_keys) {
      if (held_node != node) continue;
      TCELLS_ASSIGN_OR_RETURN(NDetEnc wrapper, NDetEnc::Create(key));
      TCELLS_ASSIGN_OR_RETURN(Bytes payload_key, wrapper.Decrypt(wrap));
      TCELLS_ASSIGN_OR_RETURN(NDetEnc body_sealer,
                              NDetEnc::Create(payload_key));
      return body_sealer.Decrypt(message.body);
    }
  }
  return Status::NotFound("device is not covered by this broadcast");
}

}  // namespace tcells::crypto
