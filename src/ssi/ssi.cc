#include "ssi/ssi.h"

#include <algorithm>

namespace tcells::ssi {

namespace {

void EncodeTagHistogram(const std::map<Bytes, uint64_t>& hist, Bytes* out) {
  ByteWriter w(out);
  w.PutU32(static_cast<uint32_t>(hist.size()));
  for (const auto& [tag, count] : hist) {
    w.PutBytes(tag);
    w.PutU64(count);
  }
}

Result<std::map<Bytes, uint64_t>> DecodeTagHistogram(ByteReader* reader) {
  // Each entry is at least a 4-byte tag length plus an 8-byte count.
  TCELLS_ASSIGN_OR_RETURN(uint32_t n, reader->GetCountU32(12));
  std::map<Bytes, uint64_t> hist;
  for (uint32_t i = 0; i < n; ++i) {
    TCELLS_ASSIGN_OR_RETURN(Bytes tag, reader->GetBytes());
    TCELLS_ASSIGN_OR_RETURN(uint64_t count, reader->GetU64());
    hist[std::move(tag)] = count;
  }
  return hist;
}

}  // namespace

void AdversaryView::EncodeTo(Bytes* out) const {
  EncodeTagHistogram(collection_tag_histogram, out);
  ByteWriter w(out);
  w.PutU32(static_cast<uint32_t>(collection_blob_sizes.size()));
  for (size_t size : collection_blob_sizes) w.PutU64(size);
  EncodeTagHistogram(aggregation_tag_histogram, out);
  w.PutU64(collection_items);
  w.PutU64(aggregation_items);
  w.PutU64(filtering_items);
}

Result<AdversaryView> AdversaryView::Decode(const Bytes& data) {
  ByteReader reader(data);
  AdversaryView view;
  TCELLS_ASSIGN_OR_RETURN(view.collection_tag_histogram,
                          DecodeTagHistogram(&reader));
  TCELLS_ASSIGN_OR_RETURN(uint32_t n_sizes, reader.GetCountU32(8));
  view.collection_blob_sizes.reserve(n_sizes);
  for (uint32_t i = 0; i < n_sizes; ++i) {
    TCELLS_ASSIGN_OR_RETURN(uint64_t size, reader.GetU64());
    view.collection_blob_sizes.push_back(static_cast<size_t>(size));
  }
  TCELLS_ASSIGN_OR_RETURN(view.aggregation_tag_histogram,
                          DecodeTagHistogram(&reader));
  TCELLS_ASSIGN_OR_RETURN(view.collection_items, reader.GetU64());
  TCELLS_ASSIGN_OR_RETURN(view.aggregation_items, reader.GetU64());
  TCELLS_ASSIGN_OR_RETURN(view.filtering_items, reader.GetU64());
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after AdversaryView");
  }
  return view;
}

void Ssi::PostQuery(QueryPost post) { post_ = std::move(post); }

void Ssi::ReceiveCollectionItems(std::vector<EncryptedItem> items) {
  for (auto& item : items) {
    if (item.routing_tag) {
      view_.collection_tag_histogram[*item.routing_tag] += 1;
    }
    view_.collection_blob_sizes.push_back(item.blob.size());
    view_.collection_items += 1;
    collected_.push_back(std::move(item));
  }
}

bool Ssi::SizeReached() const {
  if (!post_.size_max_tuples) return false;
  return collected_.size() >= *post_.size_max_tuples;
}

std::vector<EncryptedItem> Ssi::TakeCollected() {
  std::vector<EncryptedItem> out;
  out.swap(collected_);
  return out;
}

std::vector<Partition> Ssi::PartitionRandomly(std::vector<EncryptedItem> items,
                                              size_t chunk_items, Rng* rng) {
  if (chunk_items == 0) chunk_items = 1;
  rng->Shuffle(&items);
  std::vector<Partition> partitions;
  for (size_t i = 0; i < items.size(); i += chunk_items) {
    Partition p;
    size_t end = std::min(items.size(), i + chunk_items);
    p.items.assign(std::make_move_iterator(items.begin() + i),
                   std::make_move_iterator(items.begin() + end));
    partitions.push_back(std::move(p));
  }
  return partitions;
}

Result<std::vector<Partition>> Ssi::PartitionByTag(
    std::vector<EncryptedItem> items) {
  std::map<Bytes, Partition> by_tag;
  for (auto& item : items) {
    if (!item.routing_tag) {
      return Status::InvalidArgument(
          "tag-based partitioning requires routing tags on all items");
    }
    by_tag[*item.routing_tag].items.push_back(std::move(item));
  }
  std::vector<Partition> partitions;
  partitions.reserve(by_tag.size());
  for (auto& [tag, partition] : by_tag) {
    partitions.push_back(std::move(partition));
  }
  return partitions;
}

std::vector<Partition> Ssi::SplitPartition(Partition partition, size_t ways) {
  ways = std::max<size_t>(1, std::min(ways, partition.items.size()));
  std::vector<Partition> out(ways);
  // Round-robin keeps sub-partitions balanced to within one item.
  for (size_t i = 0; i < partition.items.size(); ++i) {
    out[i % ways].items.push_back(std::move(partition.items[i]));
  }
  return out;
}

void Ssi::ObserveAggregationItems(const std::vector<EncryptedItem>& items) {
  view_.aggregation_items += items.size();
  for (const auto& item : items) {
    if (item.routing_tag) {
      view_.aggregation_tag_histogram[*item.routing_tag] += 1;
    }
  }
}

void Ssi::ObserveFilteringItems(const std::vector<EncryptedItem>& items) {
  view_.filtering_items += items.size();
}

}  // namespace tcells::ssi
