#include "ssi/ssi.h"

#include <algorithm>

namespace tcells::ssi {

void Ssi::PostQuery(QueryPost post) { post_ = std::move(post); }

void Ssi::ReceiveCollectionItems(std::vector<EncryptedItem> items) {
  for (auto& item : items) {
    if (item.routing_tag) {
      view_.collection_tag_histogram[*item.routing_tag] += 1;
    }
    view_.collection_blob_sizes.push_back(item.blob.size());
    view_.collection_items += 1;
    collected_.push_back(std::move(item));
  }
}

bool Ssi::SizeReached() const {
  if (!post_.size_max_tuples) return false;
  return collected_.size() >= *post_.size_max_tuples;
}

std::vector<EncryptedItem> Ssi::TakeCollected() {
  std::vector<EncryptedItem> out;
  out.swap(collected_);
  return out;
}

std::vector<Partition> Ssi::PartitionRandomly(std::vector<EncryptedItem> items,
                                              size_t chunk_items, Rng* rng) {
  if (chunk_items == 0) chunk_items = 1;
  rng->Shuffle(&items);
  std::vector<Partition> partitions;
  for (size_t i = 0; i < items.size(); i += chunk_items) {
    Partition p;
    size_t end = std::min(items.size(), i + chunk_items);
    p.items.assign(std::make_move_iterator(items.begin() + i),
                   std::make_move_iterator(items.begin() + end));
    partitions.push_back(std::move(p));
  }
  return partitions;
}

Result<std::vector<Partition>> Ssi::PartitionByTag(
    std::vector<EncryptedItem> items) {
  std::map<Bytes, Partition> by_tag;
  for (auto& item : items) {
    if (!item.routing_tag) {
      return Status::InvalidArgument(
          "tag-based partitioning requires routing tags on all items");
    }
    by_tag[*item.routing_tag].items.push_back(std::move(item));
  }
  std::vector<Partition> partitions;
  partitions.reserve(by_tag.size());
  for (auto& [tag, partition] : by_tag) {
    partitions.push_back(std::move(partition));
  }
  return partitions;
}

std::vector<Partition> Ssi::SplitPartition(Partition partition, size_t ways) {
  ways = std::max<size_t>(1, std::min(ways, partition.items.size()));
  std::vector<Partition> out(ways);
  // Round-robin keeps sub-partitions balanced to within one item.
  for (size_t i = 0; i < partition.items.size(); ++i) {
    out[i % ways].items.push_back(std::move(partition.items[i]));
  }
  return out;
}

void Ssi::ObserveAggregationItems(const std::vector<EncryptedItem>& items) {
  view_.aggregation_items += items.size();
  for (const auto& item : items) {
    if (item.routing_tag) {
      view_.aggregation_tag_histogram[*item.routing_tag] += 1;
    }
  }
}

void Ssi::ObserveFilteringItems(const std::vector<EncryptedItem>& items) {
  view_.filtering_items += items.size();
}

}  // namespace tcells::ssi
