// SupportingServerInfrastructure (SSI): the powerful, highly available but
// honest-but-curious server tier (§2.1-2.2). It stores queryboxes and
// encrypted intermediate results, partitions covering results for parallel
// TDS processing, evaluates the cleartext SIZE clause, and re-dispatches
// partitions when a TDS goes offline. It holds no keys: its entire API
// consumes and produces EncryptedItems.
//
// For the security analysis (§5) the SSI also exposes its AdversaryView —
// the exact multiset of observations an attacker controlling the SSI gets.
#ifndef TCELLS_SSI_SSI_H_
#define TCELLS_SSI_SSI_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ssi/messages.h"

namespace tcells::ssi {

/// Everything an honest-but-curious SSI observes during a run. The exposure
/// analysis computes empirical coefficients from this, and security tests
/// assert on its contents (e.g. "all blobs of one phase have equal size",
/// "tag multiset is flat for C_Noise").
struct AdversaryView {
  /// Cleartext routing tags seen in the collection phase, with multiplicity.
  std::map<Bytes, uint64_t> collection_tag_histogram;
  /// Blob sizes seen in the collection phase.
  std::vector<size_t> collection_blob_sizes;
  /// Cleartext routing tags observed on aggregation-phase outputs (e.g. the
  /// Det_Enc(group) tags of ED_Hist's second phase — this is how the SSI
  /// learns G, and only G, there).
  std::map<Bytes, uint64_t> aggregation_tag_histogram;
  /// Number of items observed per phase (collection, aggregation rounds,
  /// filtering).
  uint64_t collection_items = 0;
  uint64_t aggregation_items = 0;
  uint64_t filtering_items = 0;

  /// Wire codec, so a remote querier can download the view for the exposure
  /// analysis. Maps encode in key order; the round trip is lossless.
  void EncodeTo(Bytes* out) const;
  static Result<AdversaryView> Decode(const Bytes& data);
};

/// One query's life inside the SSI.
class Ssi {
 public:
  Ssi() = default;

  /// ---- Querybox (step 1/2) ----
  void PostQuery(QueryPost post);
  const QueryPost& query_post() const { return post_; }

  /// ---- Collection phase (steps 3-4) ----
  /// Appends one TDS's contribution to the temporary storage area.
  void ReceiveCollectionItems(std::vector<EncryptedItem> items);

  /// True when the SIZE tuple bound has been reached (the SSI counts items;
  /// it cannot tell true from dummy/fake ones, which is the point).
  bool SizeReached() const;

  uint64_t NumCollected() const { return collected_.size(); }
  const std::vector<EncryptedItem>& collected() const { return collected_; }
  std::vector<EncryptedItem> TakeCollected();

  /// ---- Partitioning (steps 5/9) ----
  /// Random partitioning into chunks of at most `chunk_items` items: the only
  /// thing the SSI can do when items carry no routing tag (S_Agg, basic).
  static std::vector<Partition> PartitionRandomly(
      std::vector<EncryptedItem> items, size_t chunk_items, Rng* rng);

  /// Tag-based partitioning: one partition per distinct routing tag (Noise
  /// protocols and ED_Hist). Items without a tag are rejected.
  static Result<std::vector<Partition>> PartitionByTag(
      std::vector<EncryptedItem> items);

  /// Splits one partition into up to `ways` roughly equal sub-partitions
  /// (parallelizing one group/bucket across several TDSs).
  static std::vector<Partition> SplitPartition(Partition partition,
                                               size_t ways);

  /// ---- Adversary instrumentation ----
  AdversaryView& adversary_view() { return view_; }
  const AdversaryView& adversary_view() const { return view_; }
  void ObserveAggregationItems(const std::vector<EncryptedItem>& items);
  void ObserveFilteringItems(const std::vector<EncryptedItem>& items);

 private:
  QueryPost post_;
  std::vector<EncryptedItem> collected_;
  AdversaryView view_;
};

}  // namespace tcells::ssi

#endif  // TCELLS_SSI_SSI_H_
