// Queryboxes (§3.1): "SSI can maintain personal queryboxes where each TDS
// receives queries directed to it, and a global querybox for queries directed
// to the crowd." The hub tracks several concurrent active queries, each with
// its own temporary storage (Ssi instance), and which TDS has already served
// which query.
#ifndef TCELLS_SSI_QUERYBOX_H_
#define TCELLS_SSI_QUERYBOX_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/result.h"
#include "ssi/messages.h"
#include "ssi/ssi.h"

namespace tcells::ssi {

class QueryboxHub {
 public:
  /// Posts a query addressed to the whole crowd. Fails on duplicate id.
  Status PostGlobal(QueryPost post);

  /// Posts a query addressed to one TDS only (e.g. "get the monthly
  /// consumption of consumer C").
  Status PostPersonal(uint64_t tds_id, QueryPost post);

  /// The posts a connecting TDS should download: all global ones plus its
  /// personal ones, minus those it has already acknowledged.
  std::vector<const QueryPost*> Fetch(uint64_t tds_id) const;

  /// Marks a query as served by this TDS (it will not be fetched again).
  /// NotFound when the query is not active.
  Status Acknowledge(uint64_t tds_id, uint64_t query_id);

  /// Number of distinct TDSs that have acknowledged the query (0 when the
  /// query is unknown). A global query is fully served once this reaches the
  /// fleet size; a personal one once it reaches 1.
  size_t NumAcknowledged(uint64_t query_id) const;

  /// Per-query temporary storage area / protocol state.
  Result<Ssi*> StorageFor(uint64_t query_id);

  /// Closes a finished query and frees its storage. NotFound when the query
  /// is not active.
  Status Retire(uint64_t query_id);

  size_t num_active() const { return queries_.size(); }

 private:
  struct ActiveQuery {
    QueryPost post;
    std::optional<uint64_t> personal_tds;  // nullopt = global
    std::unique_ptr<Ssi> storage;
    std::set<uint64_t> acknowledged;
  };

  Status Post(QueryPost post, std::optional<uint64_t> personal_tds);

  std::map<uint64_t, ActiveQuery> queries_;
};

}  // namespace tcells::ssi

#endif  // TCELLS_SSI_QUERYBOX_H_
