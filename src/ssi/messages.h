// Wire messages exchanged through the SSI. Everything the SSI can see is in
// these structs; everything sensitive is inside `blob` ciphertexts.
#ifndef TCELLS_SSI_MESSAGES_H_
#define TCELLS_SSI_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/result.h"
#include "crypto/encryption.h"
#include "storage/tuple.h"

namespace tcells::ssi {

/// An encrypted unit flowing through the SSI: a collection tuple, a partial
/// aggregation, or a final result row. `routing_tag`, when present, is the
/// only cleartext channel a protocol deliberately exposes to the SSI for
/// partitioning: Det_Enc(A_G) bytes (Noise protocols), h(bucketId) (ED_Hist
/// phase 1) or Det_Enc(group) (ED_Hist phase 2). S_Agg and the basic
/// protocol expose no tag at all.
struct EncryptedItem {
  Bytes blob;
  std::optional<Bytes> routing_tag;

  size_t WireSize() const {
    return blob.size() + (routing_tag ? routing_tag->size() : 0);
  }

  /// Wire codec (for transports between real processes; the in-process
  /// simulation passes the structs directly).
  void EncodeTo(Bytes* out) const;
  static Result<EncryptedItem> DecodeFrom(::tcells::ByteReader* reader);

  /// Field equality is wire equality (the codec is lossless), so integrity
  /// checks can compare items directly instead of re-encoding and hashing.
  friend bool operator==(const EncryptedItem& a, const EncryptedItem& b) {
    return a.blob == b.blob && a.routing_tag == b.routing_tag;
  }
};

/// Kinds of plaintext payloads found inside an EncryptedItem blob once a TDS
/// decrypts it. The SSI can never read this byte.
enum class PayloadKind : uint8_t {
  kTrueTuple = 0,   ///< a real collection tuple
  kDummyTuple = 1,  ///< §3.2: empty result or access denied
  kFakeTuple = 2,   ///< Noise protocols' noise
  kPartialAgg = 3,  ///< serialized GroupedAggregation
  kResultRow = 4,   ///< final result row under k1
};

/// Serializes a payload: kind byte, u32 body length, body, then zero padding
/// up to `pad_to` total bytes (0 = no padding). Padding makes dummy/fake
/// payloads the same plaintext length as true ones, so that ciphertext
/// lengths leak nothing.
Bytes EncodePayload(PayloadKind kind, const Bytes& body, size_t pad_to = 0);
Bytes EncodePayload(PayloadKind kind, const uint8_t* body, size_t body_size,
                    size_t pad_to = 0);
/// Scratch form: overwrites `out`, reusing its capacity. The per-tuple seal
/// paths call this with a thread-local buffer so encoding stops allocating.
void EncodePayloadTo(PayloadKind kind, const uint8_t* body, size_t body_size,
                     size_t pad_to, Bytes* out);

struct DecodedPayload {
  PayloadKind kind;
  Bytes body;
};
Result<DecodedPayload> DecodePayload(const Bytes& payload);

/// Zero-copy view of a decoded payload: `body` points into the buffer handed
/// to DecodePayloadView and is valid only while that buffer is unchanged.
/// The TDS open paths decode every partition item through this view so the
/// body bytes are never copied out of the decryption scratch buffer.
struct PayloadView {
  PayloadKind kind;
  const uint8_t* body = nullptr;
  size_t body_size = 0;

  Bytes ToBytes() const { return Bytes(body, body + body_size); }
};
Result<PayloadView> DecodePayloadView(const uint8_t* payload, size_t n);
inline Result<PayloadView> DecodePayloadView(const Bytes& payload) {
  return DecodePayloadView(payload.data(), payload.size());
}

/// Batch-opens every item blob under `enc` into `plains` (resized to
/// items.size(); each element's capacity is reused across calls, so a
/// caller that keeps the vector alive across partitions stops allocating
/// once the buffers have grown). Returns the first decryption failure.
Status OpenAll(const crypto::NDetEnc& enc,
               std::span<const EncryptedItem> items,
               std::vector<Bytes>* plains);

/// Arena-backed batch open: every plaintext lives in `arena` and `plains` is
/// filled with views into it, so a warmed arena makes the whole open
/// allocation-free. The views are valid until the arena's next Reset(); the
/// caller owns that lifetime (the TDS resets once per partition).
Status OpenAllInto(const crypto::NDetEnc& enc,
                   std::span<const EncryptedItem> items, Arena* arena,
                   std::vector<std::span<const uint8_t>>* plains);

/// Public key-establishment material of one dynamically-keyed query (see
/// docs/KEYS.md): the key epoch the querier derived from plus a fresh nonce.
/// Everything here is cleartext by design — the per-query keys k1q/k2q are
/// derived from the *secret* epoch master secret, which the SSI never holds,
/// so publishing (epoch, query_id, nonce) reveals nothing.
struct QueryKeyPosting {
  uint32_t epoch = 0;
  uint64_t query_id = 0;
  Bytes nonce;  ///< 16 fresh bytes drawn by the querier per query

  static constexpr size_t kNonceSize = 16;

  void EncodeTo(Bytes* out) const;
  static Result<QueryKeyPosting> DecodeFrom(::tcells::ByteReader* reader);

  friend bool operator==(const QueryKeyPosting& a, const QueryKeyPosting& b) {
    return a.epoch == b.epoch && a.query_id == b.query_id &&
           a.nonce == b.nonce;
  }
};

/// What the querier posts on the SSI (§3.2 step 1): the encrypted query, the
/// querier's credential (signed by an authority), and the SIZE clause in
/// cleartext so the SSI can evaluate it. A dynamically-keyed query also
/// carries its public QueryKeyPosting; statically-keyed posts encode
/// byte-identically to the pre-key-management wire format.
struct QueryPost {
  uint64_t query_id = 0;
  Bytes encrypted_query;         ///< nDet_Enc_k1(SQL text)
  std::string querier_id;        ///< cleartext querier identity
  Bytes credential_mac;          ///< authority MAC over querier_id
  std::optional<uint64_t> size_max_tuples;
  std::optional<uint64_t> size_max_duration_ticks;
  std::optional<QueryKeyPosting> key_posting;  ///< dynamic key mode only

  Bytes Encode() const;
  static Result<QueryPost> Decode(const Bytes& data);
};

/// A chunk of the covering result handed to one TDS.
struct Partition {
  std::vector<EncryptedItem> items;

  uint64_t WireSize() const {
    uint64_t n = 0;
    for (const auto& item : items) n += item.WireSize();
    return n;
  }

  Bytes Encode() const;
  static Result<Partition> Decode(const Bytes& data);
};

}  // namespace tcells::ssi

#endif  // TCELLS_SSI_MESSAGES_H_
