#include "ssi/messages.h"

#include <algorithm>

namespace tcells::ssi {

void EncryptedItem::EncodeTo(Bytes* out) const {
  ByteWriter w(out);
  w.PutU8(routing_tag ? 1 : 0);
  if (routing_tag) w.PutBytes(*routing_tag);
  w.PutBytes(blob);
}

Result<EncryptedItem> EncryptedItem::DecodeFrom(ByteReader* reader) {
  EncryptedItem item;
  TCELLS_ASSIGN_OR_RETURN(uint8_t has_tag, reader->GetU8());
  if (has_tag > 1) return Status::Corruption("bad item tag flag");
  if (has_tag) {
    TCELLS_ASSIGN_OR_RETURN(Bytes tag, reader->GetBytes());
    item.routing_tag = std::move(tag);
  }
  TCELLS_ASSIGN_OR_RETURN(item.blob, reader->GetBytes());
  return item;
}

void QueryKeyPosting::EncodeTo(Bytes* out) const {
  ByteWriter w(out);
  w.PutU32(epoch);
  w.PutU64(query_id);
  w.PutBytes(nonce);
}

Result<QueryKeyPosting> QueryKeyPosting::DecodeFrom(ByteReader* reader) {
  QueryKeyPosting posting;
  TCELLS_ASSIGN_OR_RETURN(posting.epoch, reader->GetU32());
  TCELLS_ASSIGN_OR_RETURN(posting.query_id, reader->GetU64());
  TCELLS_ASSIGN_OR_RETURN(posting.nonce, reader->GetBytes());
  if (posting.nonce.size() != kNonceSize) {
    return Status::Corruption("key posting nonce must be 16 bytes");
  }
  return posting;
}

Bytes QueryPost::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutU64(query_id);
  w.PutBytes(encrypted_query);
  w.PutString(querier_id);
  w.PutBytes(credential_mac);
  w.PutU8(static_cast<uint8_t>((size_max_tuples ? 1 : 0) |
                               (size_max_duration_ticks ? 2 : 0) |
                               (key_posting ? 4 : 0)));
  if (size_max_tuples) w.PutU64(*size_max_tuples);
  if (size_max_duration_ticks) w.PutU64(*size_max_duration_ticks);
  if (key_posting) key_posting->EncodeTo(&out);
  return out;
}

Result<QueryPost> QueryPost::Decode(const Bytes& data) {
  ByteReader reader(data);
  QueryPost post;
  TCELLS_ASSIGN_OR_RETURN(post.query_id, reader.GetU64());
  TCELLS_ASSIGN_OR_RETURN(post.encrypted_query, reader.GetBytes());
  TCELLS_ASSIGN_OR_RETURN(post.querier_id, reader.GetString());
  TCELLS_ASSIGN_OR_RETURN(post.credential_mac, reader.GetBytes());
  TCELLS_ASSIGN_OR_RETURN(uint8_t flags, reader.GetU8());
  if (flags > 7) return Status::Corruption("bad query post flags");
  if (flags & 1) {
    TCELLS_ASSIGN_OR_RETURN(uint64_t v, reader.GetU64());
    post.size_max_tuples = v;
  }
  if (flags & 2) {
    TCELLS_ASSIGN_OR_RETURN(uint64_t v, reader.GetU64());
    post.size_max_duration_ticks = v;
  }
  if (flags & 4) {
    TCELLS_ASSIGN_OR_RETURN(QueryKeyPosting posting,
                            QueryKeyPosting::DecodeFrom(&reader));
    if (posting.query_id != post.query_id) {
      return Status::Corruption("key posting query id mismatch");
    }
    post.key_posting = std::move(posting);
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after query post");
  }
  return post;
}

Bytes Partition::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutU32(static_cast<uint32_t>(items.size()));
  for (const auto& item : items) item.EncodeTo(&out);
  return out;
}

Result<Partition> Partition::Decode(const Bytes& data) {
  ByteReader reader(data);
  Partition partition;
  // Smallest possible item is 5 bytes (tag flag + empty blob length), so a
  // count larger than remaining/5 cannot be satisfied by the buffer.
  TCELLS_ASSIGN_OR_RETURN(uint32_t n, reader.GetCountU32(5));
  partition.items.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TCELLS_ASSIGN_OR_RETURN(EncryptedItem item,
                            EncryptedItem::DecodeFrom(&reader));
    partition.items.push_back(std::move(item));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after partition");
  }
  return partition;
}

Bytes EncodePayload(PayloadKind kind, const Bytes& body, size_t pad_to) {
  return EncodePayload(kind, body.data(), body.size(), pad_to);
}

Bytes EncodePayload(PayloadKind kind, const uint8_t* body, size_t body_size,
                    size_t pad_to) {
  Bytes out;
  EncodePayloadTo(kind, body, body_size, pad_to, &out);
  return out;
}

void EncodePayloadTo(PayloadKind kind, const uint8_t* body, size_t body_size,
                     size_t pad_to, Bytes* out) {
  out->clear();
  out->reserve(std::max(pad_to, 5 + body_size));
  ByteWriter w(out);
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutU32(static_cast<uint32_t>(body_size));
  w.PutRaw(body, body_size);
  if (out->size() < pad_to) out->resize(pad_to, 0);
}

Result<DecodedPayload> DecodePayload(const Bytes& payload) {
  TCELLS_ASSIGN_OR_RETURN(PayloadView view, DecodePayloadView(payload));
  DecodedPayload out;
  out.kind = view.kind;
  out.body = view.ToBytes();
  return out;
}

Result<PayloadView> DecodePayloadView(const uint8_t* payload, size_t n) {
  ByteReader reader(payload, n);
  TCELLS_ASSIGN_OR_RETURN(uint8_t kind, reader.GetU8());
  if (kind > static_cast<uint8_t>(PayloadKind::kResultRow)) {
    return Status::Corruption("unknown payload kind");
  }
  TCELLS_ASSIGN_OR_RETURN(uint32_t body_size, reader.GetU32());
  if (body_size > reader.remaining()) {
    return Status::Corruption("payload body overruns buffer");
  }
  PayloadView view;
  view.kind = static_cast<PayloadKind>(kind);
  view.body = payload + (n - reader.remaining());
  view.body_size = body_size;
  return view;
}

Status OpenAll(const crypto::NDetEnc& enc,
               std::span<const EncryptedItem> items,
               std::vector<Bytes>* plains) {
  plains->resize(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    TCELLS_RETURN_IF_ERROR(
        enc.Decrypt(items[i].blob.data(), items[i].blob.size(),
                    &(*plains)[i]));
  }
  return Status::OK();
}

Status OpenAllInto(const crypto::NDetEnc& enc,
                   std::span<const EncryptedItem> items, Arena* arena,
                   std::vector<std::span<const uint8_t>>* plains) {
  plains->clear();
  plains->reserve(items.size());
  for (const auto& item : items) {
    if (item.blob.size() < crypto::NDetEnc::kOverhead) {
      return Status::Corruption("nDet ciphertext too short");
    }
    const size_t plain_size = item.blob.size() - crypto::NDetEnc::kOverhead;
    uint8_t* out = arena->Allocate(plain_size, 1);
    TCELLS_RETURN_IF_ERROR(
        enc.DecryptInto(item.blob.data(), item.blob.size(), out));
    plains->emplace_back(out, plain_size);
  }
  return Status::OK();
}

}  // namespace tcells::ssi
