#include "ssi/querybox.h"

namespace tcells::ssi {

Status QueryboxHub::Post(QueryPost post, std::optional<uint64_t> personal_tds) {
  uint64_t id = post.query_id;
  if (queries_.count(id)) {
    return Status::InvalidArgument("duplicate query id: " + std::to_string(id));
  }
  ActiveQuery active;
  active.post = std::move(post);
  active.personal_tds = personal_tds;
  active.storage = std::make_unique<Ssi>();
  active.storage->PostQuery(active.post);
  queries_.emplace(id, std::move(active));
  return Status::OK();
}

Status QueryboxHub::PostGlobal(QueryPost post) {
  return Post(std::move(post), std::nullopt);
}

Status QueryboxHub::PostPersonal(uint64_t tds_id, QueryPost post) {
  return Post(std::move(post), tds_id);
}

std::vector<const QueryPost*> QueryboxHub::Fetch(uint64_t tds_id) const {
  std::vector<const QueryPost*> out;
  for (const auto& [id, active] : queries_) {
    if (active.personal_tds && *active.personal_tds != tds_id) continue;
    if (active.acknowledged.count(tds_id)) continue;
    out.push_back(&active.post);
  }
  return out;
}

Status QueryboxHub::Acknowledge(uint64_t tds_id, uint64_t query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound("no active query " + std::to_string(query_id));
  }
  it->second.acknowledged.insert(tds_id);
  return Status::OK();
}

size_t QueryboxHub::NumAcknowledged(uint64_t query_id) const {
  auto it = queries_.find(query_id);
  return it == queries_.end() ? 0 : it->second.acknowledged.size();
}

Result<Ssi*> QueryboxHub::StorageFor(uint64_t query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound("no active query " + std::to_string(query_id));
  }
  return it->second.storage.get();
}

Status QueryboxHub::Retire(uint64_t query_id) {
  if (queries_.erase(query_id) == 0) {
    return Status::NotFound("no active query " + std::to_string(query_id));
  }
  return Status::OK();
}

}  // namespace tcells::ssi
