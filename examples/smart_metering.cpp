// Smart metering scenario (§2.3): the paper's flagship query
//
//   SELECT AVG(Cons) FROM Power P, Consumer C
//   WHERE C.accomodation='detached house' AND C.cid=P.cid
//   GROUP BY C.district HAVING COUNT(DISTINCT C.cid) > k SIZE n
//
// executed with every applicable protocol over the same fleet, with a
// side-by-side comparison of correctness, cost metrics and what the
// honest-but-curious SSI observed.
#include <cstdio>
#include <memory>
#include <vector>

#include "protocol/discovery.h"
#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/smart_meter.h"

using namespace tcells;

namespace {

std::shared_ptr<const std::vector<storage::Tuple>> DistrictDomain(size_t n) {
  auto domain = std::make_shared<std::vector<storage::Tuple>>();
  for (size_t d = 0; d < n; ++d) {
    domain->push_back(
        storage::Tuple({storage::Value::String(workload::DistrictName(d))}));
  }
  return domain;
}

}  // namespace

int main() {
  auto keys = crypto::KeyStore::CreateForTest(7);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x31));

  workload::SmartMeterOptions opts;
  opts.num_tds = 400;
  opts.num_districts = 10;
  opts.district_skew = 0.8;  // realistic: some districts much denser
  opts.readings_per_tds = 2;
  opts.detached_fraction = 0.55;
  auto fleet = workload::BuildSmartMeterFleet(
                   opts, keys, authority, tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  protocol::Querier querier("energy-co", authority->Issue("energy-co"), keys);

  const std::string sql =
      "SELECT C.district, AVG(P.cons) "
      "FROM Power P, Consumer C "
      "WHERE C.accomodation = 'detached house' AND C.cid = P.cid "
      "GROUP BY C.district HAVING COUNT(DISTINCT C.cid) > 10";

  Engine::Config config;
  config.options.compute_availability = 0.1;
  config.options.nf = 2;
  auto engine = Engine::Create(std::move(fleet), config).ValueOrDie();

  auto oracle = protocol::ExecuteReference(engine->fleet(), sql).ValueOrDie();
  std::printf("flagship query:\n  %s\n\n", sql.c_str());
  std::printf("trusted-oracle result (%zu districts pass HAVING):\n%s\n",
              oracle.rows.size(), oracle.ToString().c_str());

  // Discover the district distribution once (shared by C_Noise & ED_Hist).
  auto discovered = engine->DiscoverInputs(querier, 100, sql).ValueOrDie();

  struct Entry {
    const char* name;
    std::unique_ptr<protocol::Protocol> protocol;
  };
  std::vector<Entry> entries;
  entries.push_back({"S_Agg", std::make_unique<protocol::SAggProtocol>()});
  entries.push_back(
      {"R2_Noise", std::make_unique<protocol::NoiseProtocol>(
                       false, DistrictDomain(opts.num_districts))});
  entries.push_back(
      {"C_Noise", std::make_unique<protocol::NoiseProtocol>(
                      true, DistrictDomain(opts.num_districts))});
  entries.push_back({"ED_Hist", protocol::EdHistProtocol::FromDistribution(
                                    discovered.distribution, 3)});

  std::printf("%-10s %-8s %8s %12s %10s %10s %8s %8s\n", "protocol", "match",
              "P_TDS", "Load_Q(B)", "T_Q(s)", "T_local(s)", "rounds",
              "tags");
  uint64_t query_id = 200;
  for (auto& e : entries) {
    auto outcome = engine->Run(*e.protocol, querier, query_id++, sql);
    if (!outcome.ok()) {
      std::printf("%-10s ERROR: %s\n", e.name,
                  outcome.status().ToString().c_str());
      continue;
    }
    bool match = outcome->result.SameRows(oracle);
    const auto& m = outcome->metrics;
    std::printf("%-10s %-8s %8zu %12llu %10.4f %10.6f %8zu %8zu\n", e.name,
                match ? "yes" : "NO", m.Ptds(),
                static_cast<unsigned long long>(m.LoadBytes()), m.Tq(),
                m.Tlocal(engine->device()), m.aggregation_rounds,
                outcome->adversary.collection_tag_histogram.size());
  }

  // SIZE clause: the distribution company samples 150 answers only.
  std::printf("\nwith SIZE 150 (poll stops after 150 collected tuples):\n");
  const std::string sized_sql =
      "SELECT C.district, COUNT(*) FROM Power P, Consumer C "
      "WHERE C.cid = P.cid GROUP BY C.district SIZE 150";
  protocol::SAggProtocol s_agg;
  auto sized = engine->Run(s_agg, querier, 300, sized_sql).ValueOrDie();
  uint64_t counted = 0;
  for (const auto& row : sized.result.rows) {
    counted += static_cast<uint64_t>(row.at(1).AsInt64());
  }
  std::printf("  collected items: %llu, tuples in result: %llu\n",
              static_cast<unsigned long long>(sized.adversary.collection_items),
              static_cast<unsigned long long>(counted));
  return 0;
}
