// run_query: a small CLI that executes an arbitrary SQL query of the
// supported dialect over a simulated fleet with a chosen protocol, printing
// the result, the oracle check, the cost metrics and the adversary view.
//
//   ./run_query "SELECT grp, AVG(val) FROM T GROUP BY grp"
//       [--protocol=s_agg|r_noise|c_noise|ed_hist|basic]
//       [--tds=N] [--groups=G] [--skew=Z] [--availability=F] [--dropout=P]
//       [--threads=N]
//
// --threads sets the parallel fleet engine's worker count (0 = all hardware
// threads, 1 = serial). The result is bit-identical for any value.
//
// The fleet schema is the generic workload: T(gid INT, grp STRING,
// val DOUBLE, cat INT), one row per TDS by default.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "protocol/factory.h"
#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "tds/access_control.h"
#include "workload/generic.h"

using namespace tcells;

namespace {

bool FlagValue(const char* arg, const char* name, std::string* out) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s \"<SQL>\" [--protocol=...] [--tds=N] "
                 "[--groups=G] [--skew=Z] [--availability=F] [--dropout=P] "
                 "[--threads=N]\n",
                 argv[0]);
    return 2;
  }
  std::string sql = argv[1];
  std::string protocol_name = "s_agg";
  workload::GenericOptions gopts;
  gopts.num_tds = 200;
  gopts.num_groups = 6;
  protocol::RunOptions ropts;

  for (int i = 2; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--protocol", &v)) protocol_name = v;
    else if (FlagValue(argv[i], "--tds", &v)) gopts.num_tds = std::strtoul(v.c_str(), nullptr, 10);
    else if (FlagValue(argv[i], "--groups", &v)) gopts.num_groups = std::strtoul(v.c_str(), nullptr, 10);
    else if (FlagValue(argv[i], "--skew", &v)) gopts.group_skew = std::strtod(v.c_str(), nullptr);
    else if (FlagValue(argv[i], "--availability", &v)) ropts.compute_availability = std::strtod(v.c_str(), nullptr);
    else if (FlagValue(argv[i], "--dropout", &v)) ropts.dropout_rate = std::strtod(v.c_str(), nullptr);
    else if (FlagValue(argv[i], "--threads", &v)) ropts.num_threads = std::strtoul(v.c_str(), nullptr, 10);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  auto keys = crypto::KeyStore::CreateForTest(12345);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x42));
  auto fleet_or = workload::BuildGenericFleet(gopts, keys, authority,
                                              tds::AccessPolicy::AllowAll());
  if (!fleet_or.ok()) {
    std::fprintf(stderr, "fleet: %s\n", fleet_or.status().ToString().c_str());
    return 1;
  }
  auto fleet = std::move(fleet_or).ValueOrDie();
  protocol::Querier querier("cli", authority->Issue("cli"), keys);
  sim::DeviceModel device;
  ropts.expected_groups = gopts.num_groups;

  // Protocol selection via the factory; ED_Hist and the Noise protocols get
  // their prior knowledge from a secure discovery round.
  auto kind_or = protocol::ProtocolKindFromName(protocol_name);
  if (!kind_or.ok()) {
    std::fprintf(stderr, "%s\n", kind_or.status().ToString().c_str());
    return 2;
  }
  protocol::ProtocolKind kind = *kind_or;
  protocol::ProtocolInputs inputs;
  if (kind == protocol::ProtocolKind::kEdHist ||
      kind == protocol::ProtocolKind::kRnfNoise ||
      kind == protocol::ProtocolKind::kCNoise) {
    auto discovered = protocol::DiscoverInputs(fleet.get(), querier,
                                               /*query_id=*/1, sql, device,
                                               ropts);
    if (!discovered.ok()) {
      std::fprintf(stderr, "discovery: %s\n",
                   discovered.status().ToString().c_str());
      return 1;
    }
    inputs = std::move(discovered).ValueOrDie();
  }
  auto protocol_or = protocol::MakeProtocol(kind, inputs);
  if (!protocol_or.ok()) {
    std::fprintf(stderr, "%s\n", protocol_or.status().ToString().c_str());
    return 2;
  }
  auto protocol = std::move(protocol_or).ValueOrDie();

  auto outcome = protocol::RunQuery(*protocol, fleet.get(), querier,
                                    /*query_id=*/2, sql, device, ropts);
  if (!outcome.ok()) {
    std::fprintf(stderr, "run: %s\n", outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("%s over %zu TDSs via %s:\n\n%s\n", sql.c_str(), fleet->size(),
              protocol->name(), outcome->result.ToString().c_str());

  auto oracle = protocol::ExecuteReference(*fleet, sql);
  bool match = oracle.ok() && outcome->result.SameRows(*oracle);
  std::printf("matches plaintext oracle: %s\n", match ? "yes" : "NO");

  const auto& m = outcome->metrics;
  std::printf("P_TDS=%zu  Load_Q=%llu B  T_Q=%.5f s  T_local=%.6f s  "
              "rounds=%zu  dropped-and-redispatched=%llu\n",
              m.Ptds(), static_cast<unsigned long long>(m.LoadBytes()),
              m.Tq(), m.Tlocal(device), m.aggregation_rounds,
              static_cast<unsigned long long>(
                  m.accountant.phase(sim::Phase::kAggregation).dropouts));
  std::printf("SSI view: %llu collection items, %zu distinct routing tags\n",
              static_cast<unsigned long long>(
                  outcome->adversary.collection_items),
              outcome->adversary.collection_tag_histogram.size());
  return match ? 0 : 1;
}
