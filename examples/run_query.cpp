// run_query: a small CLI that executes an arbitrary SQL query of the
// supported dialect over a simulated fleet with a chosen protocol, printing
// the result, the oracle check, the cost metrics and the adversary view.
// Built on the tcells::Engine facade, so every run records telemetry: a
// per-query span tree (exportable with --trace-json) and engine-wide
// counters/histograms.
//
//   ./run_query "SELECT grp, AVG(val) FROM T GROUP BY grp"
//       [--protocol=s_agg|r_noise|c_noise|ed_hist|basic]
//       [--tds=N] [--groups=G] [--skew=Z] [--availability=F] [--dropout=P]
//       [--threads=N] [--transport=loopback|tcp]
//       [--shards=N] [--max-inflight=M] [--batch=N]
//       [--trace-json=PATH] [--metrics-json=PATH]
//
// --threads sets the parallel fleet engine's worker count (0 = all hardware
// threads, 1 = serial). The result is bit-identical for any value — and so
// is the --trace-json output (wall times are excluded by default; see
// obs/trace.h).
//
// --transport selects the SSI channel backend (docs/TRANSPORT.md): loopback
// keeps every exchange in-process (the default); tcp starts a real SSI
// server on 127.0.0.1 and routes every exchange through framed sockets.
// Results are bit-identical either way.
//
// --shards hash-partitions the TDS population across N SSI nodes behind the
// engine's shard router, and --max-inflight sets the concurrent query slots
// of the scheduler (DESIGN.md "Sharding & scheduling"). Results are
// bit-identical at any shard count too.
//
// --batch caps the calls coalesced per transport frame (docs/TRANSPORT.md
// "Batched & pipelined exchanges"; 1 = off, the default). Results are
// bit-identical at any batch size.
//
// The fleet schema is the generic workload: T(gid INT, grp STRING,
// val DOUBLE, cat INT), one row per TDS by default.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "protocol/reference.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"

using namespace tcells;

namespace {

bool FlagValue(const char* arg, const char* name, std::string* out) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  return std::fclose(f) == 0 && written == content.size();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s \"<SQL>\" [--protocol=...] [--tds=N] "
                 "[--groups=G] [--skew=Z] [--availability=F] [--dropout=P] "
                 "[--threads=N] [--transport=loopback|tcp] "
                 "[--shards=N] [--max-inflight=M] [--batch=N] "
                 "[--trace-json=PATH] [--metrics-json=PATH]\n",
                 argv[0]);
    return 2;
  }
  std::string sql = argv[1];
  std::string protocol_name = "s_agg";
  std::string trace_json_path;
  std::string metrics_json_path;
  workload::GenericOptions gopts;
  gopts.num_tds = 200;
  gopts.num_groups = 6;
  Engine::Config config;

  for (int i = 2; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--protocol", &v)) protocol_name = v;
    else if (FlagValue(argv[i], "--tds", &v)) gopts.num_tds = std::strtoul(v.c_str(), nullptr, 10);
    else if (FlagValue(argv[i], "--groups", &v)) gopts.num_groups = std::strtoul(v.c_str(), nullptr, 10);
    else if (FlagValue(argv[i], "--skew", &v)) gopts.group_skew = std::strtod(v.c_str(), nullptr);
    else if (FlagValue(argv[i], "--availability", &v)) config.options.compute_availability = std::strtod(v.c_str(), nullptr);
    else if (FlagValue(argv[i], "--dropout", &v)) config.options.dropout_rate = std::strtod(v.c_str(), nullptr);
    else if (FlagValue(argv[i], "--threads", &v)) config.options.num_threads = std::strtoul(v.c_str(), nullptr, 10);
    else if (FlagValue(argv[i], "--shards", &v)) config.num_shards = std::strtoul(v.c_str(), nullptr, 10);
    else if (FlagValue(argv[i], "--max-inflight", &v)) config.max_inflight_queries = std::strtoul(v.c_str(), nullptr, 10);
    else if (FlagValue(argv[i], "--batch", &v)) config.transport_batch_max_calls = std::strtoul(v.c_str(), nullptr, 10);
    else if (FlagValue(argv[i], "--transport", &v)) {
      auto kind_or = net::TransportKindFromName(v);
      if (!kind_or.ok()) {
        std::fprintf(stderr, "%s\n", kind_or.status().ToString().c_str());
        return 2;
      }
      config.transport = *kind_or;
    }
    else if (FlagValue(argv[i], "--trace-json", &v)) trace_json_path = v;
    else if (FlagValue(argv[i], "--metrics-json", &v)) metrics_json_path = v;
    else if (std::strcmp(argv[i], "--trace-json") == 0 && i + 1 < argc) trace_json_path = argv[++i];
    else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) metrics_json_path = argv[++i];
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  auto keys = crypto::KeyStore::CreateForTest(12345);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x42));
  auto fleet_or = workload::BuildGenericFleet(gopts, keys, authority,
                                              tds::AccessPolicy::AllowAll());
  if (!fleet_or.ok()) {
    std::fprintf(stderr, "fleet: %s\n", fleet_or.status().ToString().c_str());
    return 1;
  }
  protocol::Querier querier("cli", authority->Issue("cli"), keys);
  config.options.expected_groups = gopts.num_groups;

  auto engine_or = Engine::Create(std::move(fleet_or).ValueOrDie(), config);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 engine_or.status().ToString().c_str());
    return 2;
  }
  Engine& engine = **engine_or;
  if (config.transport == net::TransportKind::kTcp) {
    for (size_t s = 0; s < engine.num_shards(); ++s) {
      std::printf("SSI shard %zu serving on 127.0.0.1:%u (tcp transport)\n",
                  s, static_cast<unsigned>(engine.shard_port(s)));
    }
  }

  // Protocol selection via the factory; ED_Hist and the Noise protocols get
  // their prior knowledge from a secure discovery round.
  auto kind_or = protocol::ProtocolKindFromName(protocol_name);
  if (!kind_or.ok()) {
    std::fprintf(stderr, "%s\n", kind_or.status().ToString().c_str());
    return 2;
  }
  protocol::ProtocolKind kind = *kind_or;
  protocol::ProtocolInputs inputs;
  if (kind == protocol::ProtocolKind::kEdHist ||
      kind == protocol::ProtocolKind::kRnfNoise ||
      kind == protocol::ProtocolKind::kCNoise) {
    auto discovered = engine.DiscoverInputs(querier, /*query_id=*/1, sql);
    if (!discovered.ok()) {
      std::fprintf(stderr, "discovery: %s\n",
                   discovered.status().ToString().c_str());
      return 1;
    }
    inputs = std::move(discovered).ValueOrDie();
  }
  auto protocol_or = protocol::MakeProtocol(kind, inputs);
  if (!protocol_or.ok()) {
    std::fprintf(stderr, "%s\n", protocol_or.status().ToString().c_str());
    return 2;
  }
  auto protocol = std::move(protocol_or).ValueOrDie();

  auto outcome = engine.Run(*protocol, querier, /*query_id=*/2, sql);
  if (!outcome.ok()) {
    std::fprintf(stderr, "run: %s\n", outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("%s over %zu TDSs via %s:\n\n%s\n", sql.c_str(),
              engine.fleet().size(), protocol->name(),
              outcome->result.ToString().c_str());

  auto oracle = protocol::ExecuteReference(engine.fleet(), sql);
  bool match = oracle.ok() && outcome->result.SameRows(*oracle);
  std::printf("matches plaintext oracle: %s\n", match ? "yes" : "NO");

  const auto& m = outcome->metrics;
  std::printf("P_TDS=%zu  Load_Q=%llu B  T_Q=%.5f s  T_local=%.6f s  "
              "rounds=%zu  dropped-and-redispatched=%llu\n",
              m.Ptds(), static_cast<unsigned long long>(m.LoadBytes()),
              m.Tq(), m.Tlocal(engine.device()), m.aggregation_rounds,
              static_cast<unsigned long long>(
                  m.accountant.phase(sim::Phase::kAggregation).dropouts));
  std::printf("SSI view: %llu collection items, %zu distinct routing tags\n",
              static_cast<unsigned long long>(
                  outcome->adversary.collection_items),
              outcome->adversary.collection_tag_histogram.size());

  if (!trace_json_path.empty()) {
    if (!outcome->trace) {
      std::fprintf(stderr, "trace: no trace recorded\n");
      return 1;
    }
    if (!WriteFile(trace_json_path, outcome->trace->ToJson())) {
      std::fprintf(stderr, "trace: cannot write %s\n",
                   trace_json_path.c_str());
      return 1;
    }
    std::printf("trace written to %s\n", trace_json_path.c_str());
  }
  if (!metrics_json_path.empty()) {
    if (!WriteFile(metrics_json_path, engine.metrics().ToJson())) {
      std::fprintf(stderr, "metrics: cannot write %s\n",
                   metrics_json_path.c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_json_path.c_str());
  }
  return match ? 0 : 1;
}
