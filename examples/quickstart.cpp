// Quickstart: run one privacy-preserving GROUP BY query over a small fleet
// of simulated Trusted Data Servers and check it against the plaintext
// oracle.
//
//   $ ./quickstart
//
// Walks through the full pipeline: key provisioning, fleet construction,
// distribution discovery, the ED_Hist protocol, and result decryption.
#include <cstdio>

#include "protocol/discovery.h"
#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/smart_meter.h"

using namespace tcells;

int main() {
  // 1. Provision the deployment: symmetric keys k1 (querier<->TDS) and k2
  //    (TDS<->TDS), and the authority that signs querier credentials.
  auto keys = crypto::KeyStore::CreateForTest(/*seed=*/1);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x5a));

  // 2. Build a fleet of 200 smart-meter TDSs over 8 districts. Each TDS
  //    holds its own Consumer row and Power readings; nothing is shared.
  workload::SmartMeterOptions opts;
  opts.num_tds = 200;
  opts.num_districts = 8;
  opts.readings_per_tds = 3;
  auto fleet_or = workload::BuildSmartMeterFleet(
      opts, keys, authority, tds::AccessPolicy::AllowAll());
  if (!fleet_or.ok()) {
    std::fprintf(stderr, "fleet: %s\n", fleet_or.status().ToString().c_str());
    return 1;
  }
  auto fleet = std::move(fleet_or).ValueOrDie();

  // 3. The energy company is a credentialed querier sharing k1.
  protocol::Querier querier("energy-co", authority->Issue("energy-co"), keys);

  const std::string sql =
      "SELECT C.district, AVG(P.cons), COUNT(*) "
      "FROM Power P, Consumer C "
      "WHERE C.cid = P.cid GROUP BY C.district";

  // 4. The Engine owns the fleet, the simulated device profile and the SSI
  //    stack; every query below goes through it.
  Engine::Config config;
  config.options.compute_availability = 0.1;  // 10% of meters online
  auto engine_or = Engine::Create(std::move(fleet), config);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 engine_or.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(engine_or).ValueOrDie();

  // 5. ED_Hist needs the district distribution: discover it with a secure
  //    S_Agg COUNT(*) round (no plaintext ever reaches the server).
  auto discovered = engine->DiscoverInputs(querier, /*query_id=*/1, sql);
  if (!discovered.ok()) {
    std::fprintf(stderr, "discovery: %s\n",
                 discovered.status().ToString().c_str());
    return 1;
  }
  std::printf("discovered %zu district groups via secure COUNT(*)\n",
              discovered->distribution.size());

  // 6. Run the query with the equi-depth histogram protocol.
  auto protocol =
      protocol::EdHistProtocol::FromDistribution(discovered->distribution, 4);
  auto outcome = engine->Run(*protocol, querier, /*query_id=*/2, sql);
  if (!outcome.ok()) {
    std::fprintf(stderr, "run: %s\n", outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("\nquery : %s\nresult:\n%s", sql.c_str(),
              outcome->result.ToString().c_str());

  // 7. Cross-check against a trusted centralized evaluation.
  auto oracle = protocol::ExecuteReference(engine->fleet(), sql);
  bool match = oracle.ok() && outcome->result.SameRows(*oracle);
  std::printf("\nmatches plaintext oracle: %s\n", match ? "yes" : "NO");

  // 8. What did it cost, and what did the untrusted server learn?
  const auto& m = outcome->metrics;
  std::printf("\nP_TDS=%zu  Load_Q=%llu B  T_Q=%.4f s  T_local=%.6f s\n",
              m.Ptds(), static_cast<unsigned long long>(m.LoadBytes()),
              m.Tq(), m.Tlocal(engine->device()));
  std::printf("SSI observed %llu ciphertext items and %zu distinct bucket "
              "hashes (never a plaintext district).\n",
              static_cast<unsigned long long>(
                  outcome->adversary.collection_items),
              outcome->adversary.collection_tag_histogram.size());
  return match ? 0 : 1;
}
