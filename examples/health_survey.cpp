// PCEHR scenario (§2.3): health records embedded in seldom-connected secure
// tokens. Demonstrates:
//  * an identifying Select-From-Where query (alerting elderly patients in one
//    city) run by a credentialed doctor via the basic protocol;
//  * access control: an unauthorized marketer gets only dummy tuples — the
//    SSI cannot even tell that access was denied;
//  * an aggregate surveillance query (flu counts per city) under scarce
//    connectivity (1% of tokens online) with token churn mid-query.
#include <cstdio>

#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/health.h"

using namespace tcells;

int main() {
  auto keys = crypto::KeyStore::CreateForTest(21);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x77));

  // Policy defined by the Ministry of Health: doctors may read everything;
  // the public-health agency may read city+condition only (no age, no pid).
  tds::AccessPolicy policy(std::vector<tds::AccessRule>{
      {"dr-smith", "Patient", {}},
      {"dr-smith", "Vitals", {}},
      {"health-agency", "Patient", {"city", "condition"}},
  });

  workload::HealthOptions opts;
  opts.num_tds = 300;
  auto fleet =
      workload::BuildHealthFleet(opts, keys, authority, policy).ValueOrDie();

  Engine::Config config;
  config.options.compute_availability = 0.01;  // tokens connect rarely
  config.options.dropout_rate = 0.2;  // and disappear mid-computation
  auto engine = Engine::Create(std::move(fleet), config).ValueOrDie();

  // --- 1. Identifying query by an authorized doctor --------------------------
  protocol::Querier doctor("dr-smith", authority->Issue("dr-smith"), keys);
  const std::string alert_sql =
      "SELECT pid, age FROM Patient WHERE age > 80 AND city = 'Memphis'";
  protocol::BasicSfwProtocol basic;
  auto alert = engine->Run(basic, doctor, 1, alert_sql).ValueOrDie();
  auto alert_oracle =
      protocol::ExecuteReference(engine->fleet(), alert_sql).ValueOrDie();
  std::printf("doctor's alert query: %s\n", alert_sql.c_str());
  std::printf("  %zu patients matched (oracle agrees: %s); SSI saw %llu "
              "indistinguishable encrypted items\n\n",
              alert.result.rows.size(),
              alert.result.SameRows(alert_oracle) ? "yes" : "NO",
              static_cast<unsigned long long>(alert.adversary.collection_items));

  // --- 2. The same query by an unauthorized marketer -------------------------
  protocol::Querier marketer("ad-corp", authority->Issue("ad-corp"), keys);
  auto denied = engine->Run(basic, marketer, 2, alert_sql).ValueOrDie();
  std::printf("marketer runs the same query:\n");
  std::printf("  rows returned: %zu (every TDS answered with a dummy)\n",
              denied.result.rows.size());
  std::printf("  SSI still saw %llu items — selectivity and policy outcome "
              "stay hidden\n\n",
              static_cast<unsigned long long>(
                  denied.adversary.collection_items));

  // --- 3. Agency surveillance aggregate under churn ---------------------------
  protocol::Querier agency("health-agency", authority->Issue("health-agency"),
                           keys);
  const std::string flu_sql =
      "SELECT city, COUNT(*) FROM Patient WHERE condition = 'flu' "
      "GROUP BY city";
  protocol::SAggProtocol s_agg;
  auto flu = engine->Run(s_agg, agency, 3, flu_sql).ValueOrDie();
  auto flu_oracle =
      protocol::ExecuteReference(engine->fleet(), flu_sql).ValueOrDie();
  std::printf("agency flu surveillance (1%% tokens online, 20%% dropout):\n%s",
              flu.result.ToString().c_str());
  std::printf("  oracle agrees: %s; partitions re-dispatched after dropouts: "
              "%llu\n\n",
              flu.result.SameRows(flu_oracle) ? "yes" : "NO",
              static_cast<unsigned long long>(
                  flu.metrics.accountant.phase(sim::Phase::kAggregation)
                      .dropouts +
                  flu.metrics.accountant.phase(sim::Phase::kFiltering)
                      .dropouts));

  // --- 4. The agency cannot read what it was not granted ---------------------
  auto blocked =
      engine->Run(basic, agency, 4, "SELECT pid, age FROM Patient")
          .ValueOrDie();
  std::printf("agency tries 'SELECT pid, age FROM Patient': %zu rows "
              "(column-scoped policy held)\n",
              blocked.result.rows.size());
  return 0;
}
