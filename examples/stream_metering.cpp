// Stream-style metering: the paper's query semantics are those of a stream
// relational query — data is pushed from the meters to the SSI in windows
// (§2.3). This example runs a *standing* aggregate as a sequence of
// SIZE ... DURATION windows over a fleet of intermittently connected meters
// and prints the per-window series, the way a distribution company would
// watch mean consumption evolve.
#include <cstdio>

#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/smart_meter.h"

using namespace tcells;

int main() {
  auto keys = crypto::KeyStore::CreateForTest(404);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x19));
  workload::SmartMeterOptions opts;
  opts.num_tds = 250;
  opts.num_districts = 5;
  opts.readings_per_tds = 4;
  auto fleet = workload::BuildSmartMeterFleet(
                   opts, keys, authority, tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  protocol::Querier querier("energy-co", authority->Issue("energy-co"), keys);

  Engine::Config config;
  config.device = sim::DeviceModel(sim::DeviceParams::SmartMeter());
  auto engine = Engine::Create(std::move(fleet), config).ValueOrDie();

  // Each window: collect for at most 4 connection ticks or 150 answers,
  // whichever comes first; meters connect with 35% probability per tick.
  const std::string sql =
      "SELECT C.district, AVG(P.cons), COUNT(*) "
      "FROM Power P, Consumer C WHERE C.cid = P.cid "
      "GROUP BY C.district ORDER BY district SIZE 150 DURATION 4";

  std::printf("standing query, one row block per window:\n  %s\n\n",
              sql.c_str());
  std::printf("%-8s %10s %12s %10s %12s\n", "window", "answers", "ticks",
              "T_Q(s)", "result rows");

  protocol::SAggProtocol s_agg;
  for (uint64_t window = 1; window <= 5; ++window) {
    protocol::RunOptions ropts;
    ropts.compute_availability = 0.3;
    ropts.connect_prob_per_tick = 0.35;
    ropts.seed = 1000 + window;  // different connectivity each window
    auto outcome = engine->Run(s_agg, querier, window, sql, ropts);
    if (!outcome.ok()) {
      std::fprintf(stderr, "window %llu: %s\n",
                   static_cast<unsigned long long>(window),
                   outcome.status().ToString().c_str());
      return 1;
    }
    const auto& m = outcome->metrics;
    std::printf("%-8llu %10llu %12llu %10.5f %12zu\n",
                static_cast<unsigned long long>(window),
                static_cast<unsigned long long>(
                    outcome->adversary.collection_items),
                static_cast<unsigned long long>(m.collection_ticks), m.Tq(),
                outcome->result.rows.size());
    for (const auto& row : outcome->result.rows) {
      std::printf("    %-6s avg=%.3f kWh over %lld readings\n",
                  row.at(0).AsString().c_str(), row.at(1).AsDouble(),
                  static_cast<long long>(row.at(2).AsInt64()));
    }
  }

  std::printf("\nEach window samples whichever meters connected during it — "
              "the SIZE/DURATION bound trades coverage for latency, and the "
              "SSI never learns which meters were sampled.\n");
  return 0;
}
