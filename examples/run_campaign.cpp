// run_campaign: executes the adversarial scenario campaign (src/sim/campaign)
// from the command line.
//
//   run_campaign                         # full manifest, loopback backend
//   run_campaign --backend=tcp           # same scenarios over real sockets
//   run_campaign --smoke                 # the small ctest subset
//   run_campaign --filter=byz            # scenarios whose name contains "byz"
//   run_campaign --threads=8             # override worker threads everywhere
//   run_campaign --verbose               # full canonical dump per scenario
//
// Every run executes the manifest twice and fails if the two canonical dumps
// differ — the campaign's own determinism is part of what it checks. Exits
// nonzero on any invariant violation.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "sim/campaign.h"

namespace {

bool FlagValue(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using tcells::net::TransportKind;
  using tcells::sim::CampaignResult;
  using tcells::sim::RunCampaign;
  using tcells::sim::ScenarioOutcome;
  using tcells::sim::ScenarioSpec;

  TransportKind backend = TransportKind::kLoopback;
  bool smoke = false;
  bool verbose = false;
  std::string filter;
  long threads = -1;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (FlagValue(argv[i], "--backend", &value)) {
      if (value == "tcp") {
        backend = TransportKind::kTcp;
      } else if (value == "loopback") {
        backend = TransportKind::kLoopback;
      } else {
        std::cerr << "unknown backend: " << value << "\n";
        return 2;
      }
    } else if (FlagValue(argv[i], "--filter", &value)) {
      filter = value;
    } else if (FlagValue(argv[i], "--threads", &value)) {
      threads = std::stol(value);
    } else if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else if (std::string(argv[i]) == "--verbose") {
      verbose = true;
    } else {
      std::cerr << "unknown argument: " << argv[i] << "\n";
      return 2;
    }
  }

  std::vector<ScenarioSpec> manifest =
      smoke ? tcells::sim::SmokeManifest() : tcells::sim::DefaultManifest();
  if (!filter.empty()) {
    std::vector<ScenarioSpec> kept;
    for (ScenarioSpec& spec : manifest) {
      if (spec.name.find(filter) != std::string::npos) {
        kept.push_back(std::move(spec));
      }
    }
    manifest = std::move(kept);
  }
  if (threads >= 0) {
    for (ScenarioSpec& spec : manifest) {
      spec.num_threads = static_cast<size_t>(threads);
    }
  }
  std::cout << "campaign: " << manifest.size() << " scenarios, backend="
            << (backend == TransportKind::kTcp ? "tcp" : "loopback") << "\n";

  auto first = RunCampaign(manifest, backend);
  if (!first.ok()) {
    std::cerr << "campaign harness failure: " << first.status().ToString()
              << "\n";
    return 2;
  }
  for (const ScenarioOutcome& outcome : first->outcomes) {
    if (verbose) {
      std::cout << outcome.Canonical();
      continue;
    }
    std::cout << (outcome.violations.empty() ? "  ok   " : "  FAIL ")
              << outcome.name << " — "
              << (outcome.completed ? "completed" : "aborted") << ", lost="
              << outcome.partitions_lost << " tampered="
              << outcome.partitions_tampered << " faults="
              << outcome.faults_injected << " tampers=" << outcome.tampers
              << "\n";
    for (const std::string& v : outcome.violations) {
      std::cout << "         violation: " << v << "\n";
    }
  }

  // Determinism self-check: the same manifest again must reproduce the
  // byte-identical canonical dump.
  auto second = RunCampaign(manifest, backend);
  if (!second.ok()) {
    std::cerr << "campaign harness failure (2nd pass): "
              << second.status().ToString() << "\n";
    return 2;
  }
  if (first->Canonical() != second->Canonical()) {
    std::cerr << "NONDETERMINISM: two identical campaign runs diverged\n";
    return 1;
  }

  if (first->total_violations > 0) {
    std::cerr << first->total_violations << " invariant violation(s)\n";
    return 1;
  }
  std::cout << "all scenarios passed; campaign is deterministic\n";
  return 0;
}
