// Protocol advisor: given deployment parameters (fleet size, expected group
// count, availability), evaluates the §6.1 cost model and §5 exposure
// analysis for every protocol and prints a Fig-11-style recommendation.
//
//   $ ./protocol_advisor [Nt] [G] [available_fraction]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/cost_model.h"
#include "analysis/tradeoff.h"

using namespace tcells;

int main(int argc, char** argv) {
  analysis::CostParams p;
  if (argc > 1) p.nt = std::strtod(argv[1], nullptr);
  if (argc > 2) p.groups = std::strtod(argv[2], nullptr);
  if (argc > 3) p.available_fraction = std::strtod(argv[3], nullptr);

  std::printf("deployment: N_t=%.0f tuples, G=%.0f groups, %.0f%% of TDSs "
              "available for compute, s_t=%.0f B, T_t=%.0f us\n\n",
              p.nt, p.groups, p.available_fraction * 100, p.tuple_bytes,
              p.tuple_seconds * 1e6);

  std::printf("%-12s %14s %14s %12s %14s\n", "protocol", "P_TDS", "Load_Q(MB)",
              "T_Q(s)", "T_local(s)");
  for (const char* name :
       {"S_Agg", "R2_Noise", "R1000_Noise", "C_Noise", "ED_Hist"}) {
    analysis::CostMetrics m = analysis::CostFor(name, p);
    std::printf("%-12s %14.0f %14.1f %12.4f %14.6f%s\n", name, m.ptds,
                m.load_bytes / 1e6, m.tq_seconds, m.tlocal_seconds,
                m.ram_feasible ? "" : "  [!] partial aggregate exceeds TDS RAM");
  }

  std::printf("\n%s\n", analysis::RenderTradeoffFigure(p).c_str());

  // A blunt recommendation following §6.4's two reference scenarios.
  bool seldom_connected = p.available_fraction <= 0.05;
  bool small_g = p.groups <= 10;
  const char* pick;
  if (small_g) {
    pick = "S_Agg (few groups: its merge tree is shallow and it needs very "
           "few TDSs)";
  } else if (seldom_connected) {
    pick = "ED_Hist (low-availability personal tokens: spreads tiny amounts "
           "of work over whoever is online)";
  } else {
    pick = "S_Agg for maximal confidentiality and global capacity, ED_Hist "
           "for responsiveness — both dominate the noise protocols";
  }
  std::printf("recommendation: %s\n", pick);
  return 0;
}
