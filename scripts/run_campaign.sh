#!/usr/bin/env sh
# Runs the full adversarial scenario campaign (docs/TESTING.md, "Tier 5")
# on both transport backends. Builds the runner if needed. Any invariant
# violation or cross-run nondeterminism exits nonzero.
#
#   scripts/run_campaign.sh                 # full manifest, both backends
#   scripts/run_campaign.sh --smoke         # the ctest subset, both backends
#   scripts/run_campaign.sh --filter=byz    # extra flags pass through
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${BUILD_DIR:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" --target run_campaign -j >/dev/null

status=0
for backend in loopback tcp; do
  echo "== campaign: backend=$backend =="
  "$build_dir/examples/run_campaign" --backend="$backend" "$@" || status=$?
done
exit "$status"
