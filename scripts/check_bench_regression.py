#!/usr/bin/env python3
"""Bench regression gate: fresh bench_e2e_protocols run vs committed artifact.

Runs the bench binary (or takes a pre-generated JSON via --fresh), then checks
against the committed BENCH_e2e.json:

  * the fresh run's oracle check (`all_match`) must hold;
  * every (protocol, groups) row in the committed artifact must be present;
  * each fresh `ns_per_tuple` must stay within --tolerance x the committed
    value.

The tolerance band is deliberately generous (default 4x): this gate exists to
catch the per-tuple path regressing back to allocation-heavy behaviour
(a ~2.5x regression, compounding with machine noise), not to flake on a busy
CI host. Registered as `ctest -L benchgate` behind -DTCELLS_BENCHGATE=ON; see
docs/PERFORMANCE.md.

Usage:
  scripts/check_bench_regression.py --bench build/bench/bench_e2e_protocols \
      --committed BENCH_e2e.json [--tolerance 4.0]
  scripts/check_bench_regression.py --fresh /tmp/fresh.json --committed BENCH_e2e.json
"""

import argparse
import json
import subprocess
import sys
import tempfile


def row_key(run):
    return (run["protocol"], run["groups"])


def load_runs(doc, path):
    if "runs" not in doc:
        sys.exit(f"{path}: no 'runs' array — not a bench_e2e_protocols artifact")
    return {row_key(r): r for r in doc["runs"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", help="bench_e2e_protocols binary to run")
    ap.add_argument("--fresh", help="pre-generated fresh JSON (skips --bench)")
    ap.add_argument("--committed", required=True, help="committed BENCH_e2e.json")
    ap.add_argument("--tolerance", type=float, default=4.0,
                    help="max fresh/committed ns_per_tuple ratio (default 4.0)")
    args = ap.parse_args()

    if args.fresh:
        fresh_path = args.fresh
    elif args.bench:
        fresh_path = tempfile.mktemp(suffix=".json", prefix="bench_e2e_fresh_")
        print(f"running {args.bench} -> {fresh_path}", flush=True)
        subprocess.run([args.bench, fresh_path], check=True,
                       stdout=subprocess.DEVNULL)
    else:
        ap.error("one of --bench or --fresh is required")

    with open(args.committed) as f:
        committed = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)

    failures = []
    if not fresh.get("all_match", False):
        failures.append("fresh run: all_match is false (oracle mismatch)")

    committed_runs = load_runs(committed, args.committed)
    fresh_runs = load_runs(fresh, fresh_path)

    print(f"{'protocol':>10} {'G':>3} {'committed':>10} {'fresh':>10} "
          f"{'ratio':>6}  (tolerance {args.tolerance:g}x)")
    for key, ref in sorted(committed_runs.items()):
        got = fresh_runs.get(key)
        name = f"{key[0]}, G={key[1]}"
        if got is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        ref_ns, got_ns = ref["ns_per_tuple"], got["ns_per_tuple"]
        ratio = got_ns / ref_ns if ref_ns > 0 else float("inf")
        flag = ""
        if ratio > args.tolerance:
            failures.append(
                f"{name}: ns_per_tuple {got_ns:.0f} vs committed {ref_ns:.0f} "
                f"({ratio:.2f}x > {args.tolerance:g}x tolerance)")
            flag = "  <-- REGRESSION"
        if not got.get("match", False):
            failures.append(f"{name}: oracle mismatch in fresh run")
        print(f"{key[0]:>10} {key[1]:>3} {ref_ns:>10.0f} {got_ns:>10.0f} "
              f"{ratio:>5.2f}x{flag}")

    if failures:
        print("\nFAIL:")
        for f_ in failures:
            print(f"  - {f_}")
        return 1
    print("\nOK: all rows within tolerance, oracle matches everywhere")
    return 0


if __name__ == "__main__":
    sys.exit(main())
